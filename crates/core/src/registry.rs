//! The protocol registry: `Box<dyn Activation>` factories keyed by name and
//! serde parameters.
//!
//! This replaces the closed `ProtocolKind` enum the experiment harness used
//! to switch on: a scenario names its protocol (`"pairwise"`,
//! `"affine-idealized"`, …), the registry resolves the name to a factory, and
//! the factory builds a boxed [`Activation`] from the scenario's parameters.
//! Adding a protocol is one [`ProtocolRegistry::register`] call — no
//! experiment code changes.
//!
//! Each entry carries a **seed tag**, mixed into the per-trial run stream
//! (`seeds.trial("run", trial ^ (tag << 32))`). The built-in tags 0–3 are the
//! discriminants of the retired enum, which keeps every scenario run
//! bit-identical to the pre-registry harness; new registrations must pick
//! fresh tags so protocols compared on one instance stay statistically
//! independent.

use crate::affine::round_based::{
    CoefficientRule, LocalAveraging, RoundBasedActivation, RoundBasedConfig,
};
use crate::affine::state_machine::AffineStateMachine;
use crate::error::ProtocolError;
use crate::geographic::GeographicGossip;
use crate::model::{
    AffineCompleteGraph, CompleteGraphActivation, PerturbationKind, PerturbedAffineCompleteGraph,
    PerturbedCompleteGraphActivation,
};
use crate::pairwise::PairwiseGossip;
use geogossip_graph::GeometricGraph;
use geogossip_routing::target::TargetSelector;
use geogossip_sim::engine::Activation;
use geogossip_sim::scenario::{ProtocolFactory, ProtocolSpec, Runner};
use rand::RngCore;

/// A protocol factory function: scenario parameters + network + initial
/// values + stop target + the trial's run RNG, to a boxed protocol borrowing
/// the network.
pub type BuildFn = for<'a> fn(
    &ProtocolSpec,
    &'a GeometricGraph,
    Vec<f64>,
    f64,
    &mut dyn RngCore,
) -> Result<Box<dyn Activation + 'a>, ProtocolError>;

/// One registry entry: a resolvable name plus its factory and metadata.
pub struct ProtocolEntry {
    /// The name scenarios use to select this protocol.
    pub name: String,
    /// One-line description for listings.
    pub summary: String,
    /// Mixed into the per-trial run seed; unique per entry.
    pub seed_tag: u64,
    build: BuildFn,
}

/// Name-keyed collection of protocol factories; implements the scenario
/// layer's [`ProtocolFactory`] so a [`Runner`] can execute specs against it.
pub struct ProtocolRegistry {
    entries: Vec<ProtocolEntry>,
}

impl ProtocolRegistry {
    /// An empty registry (useful for fully custom protocol sets).
    pub fn empty() -> Self {
        ProtocolRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry of built-in protocols:
    ///
    /// | name | protocol | seed tag |
    /// |---|---|---|
    /// | `pairwise` | Boyd et al. nearest-neighbor gossip | 0 |
    /// | `geographic` | Dimakis et al. geographic gossip | 1 |
    /// | `affine-idealized` | this paper, round-based, exact local averaging | 2 |
    /// | `affine-recursive` | this paper, round-based, recursive local averaging | 3 |
    /// | `affine-state-machine` | this paper, literal asynchronous protocol | 4 |
    /// | `affine-complete` | Lemma-1 complete-graph dynamics | 5 |
    /// | `perturbed-affine-complete` | Lemma-2 perturbed dynamics | 6 |
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        registry.register(
            "pairwise",
            "Boyd et al. pairwise nearest-neighbor gossip",
            0,
            build_pairwise,
        );
        registry.register(
            "geographic",
            "Dimakis et al. geographic gossip (params: selector, probes, cap)",
            1,
            build_geographic,
        );
        registry.register(
            "affine-idealized",
            "affine hierarchy, round-based, exact local averaging (params: coefficient-fraction, …)",
            2,
            build_affine_idealized,
        );
        registry.register(
            "affine-recursive",
            "affine hierarchy, round-based, recursive gossip local averaging",
            3,
            build_affine_recursive,
        );
        registry.register(
            "affine-state-machine",
            "affine hierarchy, literal asynchronous state machine (practical schedule)",
            4,
            build_state_machine,
        );
        registry.register(
            "affine-complete",
            "Lemma-1 affine dynamics on the complete graph (params: alpha)",
            5,
            build_affine_complete,
        );
        registry.register(
            "perturbed-affine-complete",
            "Lemma-2 perturbed affine dynamics (params: alpha, magnitude, kind)",
            6,
            build_perturbed_complete,
        );
        registry
    }

    /// Registers (or replaces) a protocol under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `seed_tag` collides with a different entry's tag — two
    /// protocols sharing a tag would consume identical run streams, silently
    /// correlating their results.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        summary: impl Into<String>,
        seed_tag: u64,
        build: BuildFn,
    ) {
        let name = name.into();
        self.entries.retain(|e| e.name != name);
        assert!(
            self.entries.iter().all(|e| e.seed_tag != seed_tag),
            "seed tag {seed_tag} already taken by another protocol"
        );
        self.entries.push(ProtocolEntry {
            name,
            summary: summary.into(),
            seed_tag,
            build,
        });
    }

    /// The registered entries, in registration order.
    pub fn entries(&self) -> &[ProtocolEntry] {
        &self.entries
    }

    fn entry(&self, name: &str) -> Option<&ProtocolEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

impl ProtocolFactory for ProtocolRegistry {
    fn names(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    fn seed_tag(&self, name: &str) -> Option<u64> {
        self.entry(name).map(|e| e.seed_tag)
    }

    fn build<'a>(
        &self,
        spec: &ProtocolSpec,
        graph: &'a GeometricGraph,
        values: Vec<f64>,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
        let entry = self
            .entry(&spec.name)
            .ok_or_else(|| ProtocolError::UnknownProtocol {
                name: spec.name.clone(),
            })?;
        (entry.build)(spec, graph, values, epsilon, rng)
    }
}

/// A [`Runner`] over the built-in registry — the one-line entry point the
/// CLI, the experiments and the examples share.
pub fn builtin_runner() -> Runner {
    Runner::new(Box::new(ProtocolRegistry::builtin()))
}

// ---------------------------------------------------------------------------
// Built-in factories.
// ---------------------------------------------------------------------------

fn build_pairwise<'a>(
    spec: &ProtocolSpec,
    graph: &'a GeometricGraph,
    values: Vec<f64>,
    _epsilon: f64,
    _rng: &mut dyn RngCore,
) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
    spec.reject_unknown(&[])?;
    Ok(Box::new(PairwiseGossip::new(graph, values)?))
}

fn build_geographic<'a>(
    spec: &ProtocolSpec,
    graph: &'a GeometricGraph,
    values: Vec<f64>,
    _epsilon: f64,
    rng: &mut dyn RngCore,
) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
    spec.reject_unknown(&["selector", "probes", "cap"])?;
    let selector = match spec.text("selector", "nearest-position")?.as_str() {
        "nearest-position" => TargetSelector::NearestToUniformPosition,
        "uniform-index" => TargetSelector::UniformByIndex,
        "rejection-sampled" => {
            let probes = spec.number("probes", 10_000.0)? as usize;
            let cap = spec.number("cap", 20.0)? as usize;
            TargetSelector::rejection_sampled(graph, probes, cap, rng)
        }
        other => {
            return Err(ProtocolError::invalid(
                "selector",
                format!(
                    "unknown selector `{other}` (known: nearest-position, uniform-index, rejection-sampled)"
                ),
            ))
        }
    };
    Ok(Box::new(GeographicGossip::with_selector(
        graph, values, selector,
    )?))
}

/// Shared parameter decoding for the two round-based variants.
fn round_based_config(
    spec: &ProtocolSpec,
    base: RoundBasedConfig,
) -> Result<RoundBasedConfig, ProtocolError> {
    spec.reject_unknown(&[
        "coefficient-fraction",
        "coefficient-fixed",
        "rounds-factor",
        "epsilon-decay",
        "max-top-rounds",
        "max-exchanges-factor",
    ])?;
    let mut config = base;
    if let Some(fixed) = optional_number(spec, "coefficient-fixed")? {
        config.coefficient = CoefficientRule::Fixed(fixed);
        if spec.params.contains_key("coefficient-fraction") {
            return Err(ProtocolError::invalid(
                "coefficient-fixed",
                "cannot combine with coefficient-fraction",
            ));
        }
    } else if let Some(fraction) = optional_number(spec, "coefficient-fraction")? {
        config.coefficient = CoefficientRule::FractionOfPopulation(fraction);
    }
    config.rounds_factor = spec.number("rounds-factor", config.rounds_factor)?;
    config.epsilon_decay = spec.number("epsilon-decay", config.epsilon_decay)?;
    config.max_top_rounds = spec.number("max-top-rounds", config.max_top_rounds as f64)? as u64;
    if let Some(factor) = optional_number(spec, "max-exchanges-factor")? {
        config.local_averaging = match config.local_averaging {
            LocalAveraging::Gossip { .. } => LocalAveraging::Gossip {
                max_exchanges_factor: factor,
            },
            LocalAveraging::Exact => {
                return Err(ProtocolError::invalid(
                    "max-exchanges-factor",
                    "only applies to the recursive (gossip) local-averaging mode",
                ))
            }
        };
    }
    Ok(config)
}

fn optional_number(spec: &ProtocolSpec, key: &str) -> Result<Option<f64>, ProtocolError> {
    if spec.params.contains_key(key) {
        spec.number(key, 0.0).map(Some)
    } else {
        Ok(None)
    }
}

fn build_affine_idealized<'a>(
    spec: &ProtocolSpec,
    graph: &'a GeometricGraph,
    values: Vec<f64>,
    epsilon: f64,
    _rng: &mut dyn RngCore,
) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
    let config = round_based_config(spec, RoundBasedConfig::idealized(graph.len()))?;
    Ok(Box::new(RoundBasedActivation::new(
        graph, values, config, epsilon,
    )?))
}

fn build_affine_recursive<'a>(
    spec: &ProtocolSpec,
    graph: &'a GeometricGraph,
    values: Vec<f64>,
    epsilon: f64,
    _rng: &mut dyn RngCore,
) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
    let config = round_based_config(spec, RoundBasedConfig::practical(graph.len()))?;
    Ok(Box::new(RoundBasedActivation::new(
        graph, values, config, epsilon,
    )?))
}

fn build_state_machine<'a>(
    spec: &ProtocolSpec,
    graph: &'a GeometricGraph,
    values: Vec<f64>,
    _epsilon: f64,
    _rng: &mut dyn RngCore,
) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
    spec.reject_unknown(&[])?;
    Ok(Box::new(AffineStateMachine::practical(graph, values)?))
}

fn build_affine_complete<'a>(
    spec: &ProtocolSpec,
    graph: &'a GeometricGraph,
    values: Vec<f64>,
    _epsilon: f64,
    rng: &mut dyn RngCore,
) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
    spec.reject_unknown(&["alpha"])?;
    let mut model = match spec.params.get("alpha") {
        None => AffineCompleteGraph::with_random_alphas(graph.len(), rng)?,
        Some(_) => {
            AffineCompleteGraph::with_uniform_alpha(graph.len(), spec.number("alpha", 0.4)?)?
        }
    };
    model.set_centered_values(values)?;
    Ok(Box::new(CompleteGraphActivation::new(model)))
}

fn build_perturbed_complete<'a>(
    spec: &ProtocolSpec,
    graph: &'a GeometricGraph,
    values: Vec<f64>,
    _epsilon: f64,
    _rng: &mut dyn RngCore,
) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
    spec.reject_unknown(&["alpha", "magnitude", "kind"])?;
    let kind = match spec.text("kind", "uniform-symmetric")?.as_str() {
        "constant" => PerturbationKind::Constant,
        "uniform-symmetric" => PerturbationKind::UniformSymmetric,
        "alternating" => PerturbationKind::Alternating,
        other => {
            return Err(ProtocolError::invalid(
                "kind",
                format!(
                    "unknown perturbation kind `{other}` (known: constant, uniform-symmetric, alternating)"
                ),
            ))
        }
    };
    let mut model = PerturbedAffineCompleteGraph::new(
        graph.len(),
        spec.number("alpha", 0.45)?,
        spec.number("magnitude", 1e-4)?,
        kind,
    )?;
    model.set_centered_values(values)?;
    Ok(Box::new(PerturbedCompleteGraphActivation::new(model)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(1));
        GeometricGraph::build_at_connectivity_radius(pts, 2.0)
    }

    #[test]
    fn every_builtin_resolves_and_builds() {
        let registry = ProtocolRegistry::builtin();
        let g = graph(128);
        assert_eq!(registry.names().len(), 7);
        for name in registry.names() {
            let spec = ProtocolSpec::named(&name);
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let values = vec![1.0; g.len()];
            let protocol = registry
                .build(&spec, &g, values, 0.1, &mut rng)
                .unwrap_or_else(|e| panic!("{name} failed to build: {e}"));
            assert!(!protocol.name().is_empty());
            assert!(registry.seed_tag(&name).is_some());
        }
    }

    #[test]
    fn seed_tags_are_unique_and_stable_for_the_legacy_four() {
        let registry = ProtocolRegistry::builtin();
        // Tags 0–3 are the retired ProtocolKind discriminants (bit-for-bit
        // reproducibility of historical runs depends on them).
        assert_eq!(registry.seed_tag("pairwise"), Some(0));
        assert_eq!(registry.seed_tag("geographic"), Some(1));
        assert_eq!(registry.seed_tag("affine-idealized"), Some(2));
        assert_eq!(registry.seed_tag("affine-recursive"), Some(3));
        let mut tags: Vec<u64> = registry.entries().iter().map(|e| e.seed_tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), registry.entries().len());
    }

    #[test]
    fn unknown_names_and_params_are_rejected() {
        let registry = ProtocolRegistry::builtin();
        let g = graph(64);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(matches!(
            registry.build(
                &ProtocolSpec::named("nope"),
                &g,
                vec![0.0; 64],
                0.1,
                &mut rng
            ),
            Err(ProtocolError::UnknownProtocol { .. })
        ));
        let bad = ProtocolSpec::named("pairwise").with_number("typo", 1.0);
        assert!(matches!(
            registry.build(&bad, &g, vec![0.0; 64], 0.1, &mut rng),
            Err(ProtocolError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn round_based_params_reshape_the_config() {
        let registry = ProtocolRegistry::builtin();
        let g = graph(256);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let spec = ProtocolSpec::named("affine-idealized")
            .with_number("coefficient-fixed", 0.5)
            .with_number("max-top-rounds", 17.0);
        let protocol = registry
            .build(&spec, &g, vec![1.0; g.len()], 0.1, &mut rng)
            .unwrap();
        let params = protocol.params();
        let find = |key: &str| {
            params
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert!(find("coefficient").contains("Fixed(0.5)"));
        assert_eq!(find("max_top_rounds"), "17");

        // Conflicting coefficient parameters are rejected.
        let conflict = ProtocolSpec::named("affine-idealized")
            .with_number("coefficient-fixed", 0.5)
            .with_number("coefficient-fraction", 0.4);
        assert!(registry
            .build(&conflict, &g, vec![1.0; g.len()], 0.1, &mut rng)
            .is_err());
    }

    #[test]
    fn custom_registrations_replace_by_name_and_reject_tag_collisions() {
        let mut registry = ProtocolRegistry::builtin();
        registry.register("pairwise", "replacement", 0, build_pairwise);
        assert_eq!(registry.entries().len(), 7);
        assert_eq!(
            registry
                .entries()
                .iter()
                .find(|e| e.name == "pairwise")
                .unwrap()
                .summary,
            "replacement"
        );
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn colliding_seed_tags_panic() {
        let mut registry = ProtocolRegistry::builtin();
        registry.register("another", "tag thief", 0, build_pairwise);
    }
}
