//! The Dimakis et al. baseline: geographic gossip.
//!
//! On each clock tick the activated sensor draws a target *position* uniformly
//! at random from the unit square, greedily routes a packet with its value to
//! the node nearest that position, and the two nodes replace their values with
//! the average (Section 1.1 of the paper, citing [5]). Each exchange costs a
//! routed round trip of `Θ(sqrt(n / log n))` hops, but because the contacted
//! partner is (roughly) uniform over the whole network, only `Õ(n)` exchanges
//! are needed — `Õ(n^1.5)` transmissions in total.

use crate::error::ProtocolError;
use crate::state::GossipState;
use crate::update::convex_average;
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::{
    route_terminus, route_terminus_masked, route_terminus_to_node, route_terminus_to_node_masked,
};
use geogossip_routing::target::TargetSelector;
use geogossip_sim::batch::{BatchActivation, ResolvedPlan, TickPlan};
use geogossip_sim::clock::Tick;
use geogossip_sim::engine::{Activation, SquaredError};
use geogossip_sim::fault::{FaultContext, FaultSupport};
use geogossip_sim::metrics::TransmissionCounter;
use rand::{Rng, RngCore};

/// The geographic gossip protocol of Dimakis, Sarwate and Wainwright.
///
/// # Example
///
/// ```
/// use geogossip_core::prelude::*;
/// use geogossip_graph::GeometricGraph;
/// use geogossip_geometry::sampling::sample_unit_square;
/// use geogossip_sim::{AsyncEngine, StopCondition};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(4);
/// let pts = sample_unit_square(128, &mut rng);
/// let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
/// let values = InitialCondition::Spike.generate(graph.len(), &mut rng);
/// let mut gossip = GeographicGossip::new(&graph, values)?;
/// let report = AsyncEngine::new(graph.len())
///     .run(&mut gossip, StopCondition::at_epsilon(0.2).with_max_ticks(200_000), &mut rng);
/// assert!(report.converged());
/// # Ok::<(), geogossip_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GeographicGossip<'a> {
    graph: &'a GeometricGraph,
    state: GossipState,
    selector: TargetSelector,
    exchanges: u64,
    failed_routes: u64,
}

impl<'a> GeographicGossip<'a> {
    /// Creates the protocol with the plain "nearest node to a uniform
    /// position" partner selection (no rejection sampling).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyNetwork`] for an empty graph and
    /// [`ProtocolError::ValueLengthMismatch`] when the value vector length
    /// does not match the node count.
    pub fn new(graph: &'a GeometricGraph, initial_values: Vec<f64>) -> Result<Self, ProtocolError> {
        Self::with_selector(
            graph,
            initial_values,
            TargetSelector::NearestToUniformPosition,
        )
    }

    /// Creates the protocol with an explicit partner-selection strategy
    /// (e.g. [`TargetSelector::rejection_sampled`] as in the original paper,
    /// or [`TargetSelector::UniformByIndex`] as an idealised reference).
    ///
    /// # Errors
    ///
    /// Same as [`GeographicGossip::new`].
    pub fn with_selector(
        graph: &'a GeometricGraph,
        initial_values: Vec<f64>,
        selector: TargetSelector,
    ) -> Result<Self, ProtocolError> {
        if graph.is_empty() {
            return Err(ProtocolError::EmptyNetwork);
        }
        if initial_values.len() != graph.len() {
            return Err(ProtocolError::ValueLengthMismatch {
                nodes: graph.len(),
                values: initial_values.len(),
            });
        }
        Ok(GeographicGossip {
            graph,
            state: GossipState::new(initial_values),
            selector,
            exchanges: 0,
            failed_routes: 0,
        })
    }

    /// The current gossip state.
    pub fn state(&self) -> &GossipState {
        &self.state
    }

    /// Number of completed long-range exchanges.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Number of rounds whose return route dead-ended (the exchange is still
    /// performed — the partner was reached — but the hop count reflects the
    /// partial return path).
    pub fn failed_routes(&self) -> u64 {
        self.failed_routes
    }

    /// One tick of the protocol — the zero-cost generic hot path. The
    /// object-safe [`Activation::on_tick`] forwards here with a `dyn` RNG;
    /// monomorphised callers (benchmarks, custom drivers) keep full inlining.
    #[inline]
    pub fn step<R: Rng + ?Sized>(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut R) {
        if self.graph.len() < 2 {
            return;
        }
        let s = tick.node;
        // 1. Pick the partner: either directly via the selector (uniform by
        //    index / rejection sampled) or as "whoever greedy routing towards
        //    a uniform position stops at". Both legs use the allocation-free
        //    walk — only terminus and hop count are needed on this hot path.
        let (partner, outbound_hops) = match &self.selector {
            TargetSelector::NearestToUniformPosition => {
                let target = geogossip_geometry::sampling::uniform_point_in(
                    geogossip_geometry::unit_square(),
                    rng,
                );
                let outcome = route_terminus(self.graph, s, target);
                (outcome.terminus, outcome.hops)
            }
            selector => {
                let Some(partner) = selector.draw(self.graph, s, rng) else {
                    return;
                };
                let (outcome, delivered) = route_terminus_to_node(self.graph, s, partner);
                if !delivered {
                    self.failed_routes += 1;
                }
                (outcome.terminus, outcome.hops)
            }
        };
        if partner == s {
            // The random position landed in s's own Voronoi cell; the round is
            // a no-op and costs nothing (no packet leaves s).
            return;
        }
        // 2. The partner routes its value back to s.
        let (back, back_delivered) = route_terminus_to_node(self.graph, partner, s);
        if !back_delivered {
            self.failed_routes += 1;
        }
        // 3. Both replace their values by the average.
        let (new_s, new_p) = convex_average(
            self.state.value(s.index()),
            self.state.value(partner.index()),
        );
        self.state.set(s.index(), new_s);
        self.state.set(partner.index(), new_p);
        tx.charge_routing((outbound_hops + back.hops) as u64);
        self.exchanges += 1;
    }

    /// One tick under fault injection. Routing skips dead sensors (the walk
    /// degrades gracefully: it stops at the nearest *live* local minimum, so
    /// a round whose target region has died exchanges with the closest
    /// surviving sensor instead); a dropped round still pays every routed hop
    /// but applies no averaging; stale endpoints keep their old value.
    pub fn step_faulty<R: Rng + ?Sized>(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut R,
        faults: &FaultContext<'_>,
    ) {
        if self.graph.len() < 2 {
            return;
        }
        let s = tick.node;
        let alive = faults.alive_mask();
        let (partner, outbound_hops) = match &self.selector {
            TargetSelector::NearestToUniformPosition => {
                let target = geogossip_geometry::sampling::uniform_point_in(
                    geogossip_geometry::unit_square(),
                    rng,
                );
                let outcome = if alive.is_empty() {
                    route_terminus(self.graph, s, target)
                } else {
                    route_terminus_masked(self.graph, s, target, alive)
                };
                (outcome.terminus, outcome.hops)
            }
            selector => {
                let Some(partner) = selector.draw(self.graph, s, rng) else {
                    return;
                };
                let (outcome, delivered) = if alive.is_empty() {
                    route_terminus_to_node(self.graph, s, partner)
                } else {
                    route_terminus_to_node_masked(self.graph, s, partner, alive)
                };
                if !delivered {
                    self.failed_routes += 1;
                }
                (outcome.terminus, outcome.hops)
            }
        };
        if partner == s {
            return;
        }
        let (back, back_delivered) = if alive.is_empty() {
            route_terminus_to_node(self.graph, partner, s)
        } else {
            route_terminus_to_node_masked(self.graph, partner, s, alive)
        };
        if !back_delivered {
            self.failed_routes += 1;
        }
        // The packets travelled the full route either way: a dropped round is
        // cost without progress.
        tx.charge_routing((outbound_hops + back.hops) as u64);
        if faults.dropped {
            return;
        }
        let (new_s, new_p) = convex_average(
            self.state.value(s.index()),
            self.state.value(partner.index()),
        );
        if !faults.is_stale(s.index()) {
            self.state.set(s.index(), new_s);
        }
        if !faults.is_stale(partner.index()) {
            self.state.set(partner.index(), new_p);
        }
        self.exchanges += 1;
    }
}

impl Activation for GeographicGossip<'_> {
    fn on_tick(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
        self.step(tick, tx, rng);
    }

    fn as_batch(&mut self) -> Option<&mut dyn BatchActivation> {
        Some(self)
    }

    fn fault_support(&self) -> FaultSupport {
        FaultSupport::all()
    }

    fn on_tick_faulty(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut dyn RngCore,
        faults: &FaultContext<'_>,
    ) {
        self.step_faulty(tick, tx, rng, faults);
    }

    fn relative_error(&self) -> f64 {
        self.state.relative_error()
    }

    fn squared_error(&self) -> Option<SquaredError> {
        Some(SquaredError {
            current_sq: self.state.deviation_sq(),
            initial: self.state.initial_deviation(),
        })
    }

    fn name(&self) -> &str {
        "geographic (Dimakis)"
    }

    fn params(&self) -> Vec<(String, String)> {
        vec![("selector".into(), format!("{:?}", self.selector))]
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("exchanges".into(), self.exchanges as f64),
            ("failed_routes".into(), self.failed_routes as f64),
        ]
    }
}

impl BatchActivation for GeographicGossip<'_> {
    fn network(&self) -> &GeometricGraph {
        self.graph
    }

    fn draw_plan(&self, tick: Tick, rng: &mut dyn RngCore) -> TickPlan {
        if self.graph.len() < 2 {
            return TickPlan::Skip { isolated: false };
        }
        match &self.selector {
            TargetSelector::NearestToUniformPosition => {
                let target = geogossip_geometry::sampling::uniform_point_in(
                    geogossip_geometry::unit_square(),
                    rng,
                );
                TickPlan::RoutePosition { target }
            }
            selector => match selector.draw(self.graph, tick.node, rng) {
                Some(target) => TickPlan::RouteNode { target },
                None => TickPlan::Skip { isolated: false },
            },
        }
    }

    fn commit_plan(&mut self, tick: Tick, resolved: &ResolvedPlan, tx: &mut TransmissionCounter) {
        match *resolved {
            ResolvedPlan::Skip { .. } => {}
            ResolvedPlan::Route {
                partner,
                outbound_hops,
                outbound_failed,
                back,
            } => {
                // Failed-route accounting happens before the partner-is-self
                // early return, exactly as in the sequential step.
                if outbound_failed {
                    self.failed_routes += 1;
                }
                let Some((back_hops, back_delivered)) = back else {
                    return;
                };
                if !back_delivered {
                    self.failed_routes += 1;
                }
                let s = tick.node;
                let (new_s, new_p) = convex_average(
                    self.state.value(s.index()),
                    self.state.value(partner.index()),
                );
                self.state.set(s.index(), new_s);
                self.state.set(partner.index(), new_p);
                tx.charge_routing((outbound_hops + back_hops) as u64);
                self.exchanges += 1;
            }
            ResolvedPlan::Pair { .. } => {
                unreachable!("geographic gossip never plans a pairwise exchange")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::PairwiseGossip;
    use crate::state::InitialCondition;
    use geogossip_geometry::sampling::sample_unit_square;
    use geogossip_sim::engine::{AsyncEngine, StopCondition};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, 2.0)
    }

    #[test]
    fn construction_validates_inputs() {
        let g = graph(10, 1);
        assert!(GeographicGossip::new(&g, vec![0.0; 10]).is_ok());
        assert!(GeographicGossip::new(&g, vec![0.0; 11]).is_err());
        let empty = GeometricGraph::build(Vec::new(), 0.1);
        assert!(GeographicGossip::new(&empty, Vec::new()).is_err());
    }

    #[test]
    fn converges_on_a_connected_graph() {
        let g = graph(128, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let mut gossip = GeographicGossip::new(&g, values).unwrap();
        let report = AsyncEngine::new(g.len()).run(
            &mut gossip,
            StopCondition::at_epsilon(0.05).with_max_ticks(500_000),
            &mut rng,
        );
        assert!(
            report.converged(),
            "stopped with error {}",
            report.final_error
        );
        assert!(report.transmissions.routing() > 0);
        assert_eq!(report.transmissions.local(), 0);
    }

    #[test]
    fn conserves_the_mean() {
        let g = graph(96, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let values = InitialCondition::Ramp.generate(g.len(), &mut rng);
        let mut gossip = GeographicGossip::new(&g, values).unwrap();
        let _ = AsyncEngine::new(g.len()).run(
            &mut gossip,
            StopCondition::at_epsilon(0.1).with_max_ticks(200_000),
            &mut rng,
        );
        assert!(gossip.state().mass_drift() < 1e-9);
    }

    #[test]
    fn uses_fewer_ticks_than_pairwise_on_the_same_instance() {
        // Geographic gossip mixes like the complete graph, so it needs many
        // fewer clock ticks (rounds) than nearest-neighbor gossip; that is the
        // whole point of paying √n hops per round. A spike decays quickly under
        // purely local averaging at first, so the asymptotic gap only shows
        // once the target is tight enough that pairwise is limited by the
        // geometric graph's spectral gap — hence the 1% target here.
        let g = graph(512, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let stop = StopCondition::at_epsilon(0.01).with_max_ticks(10_000_000);

        let mut geo = GeographicGossip::new(&g, values.clone()).unwrap();
        let geo_report =
            AsyncEngine::new(g.len()).run(&mut geo, stop, &mut ChaCha8Rng::seed_from_u64(8));

        let mut pw = PairwiseGossip::new(&g, values).unwrap();
        let pw_report =
            AsyncEngine::new(g.len()).run(&mut pw, stop, &mut ChaCha8Rng::seed_from_u64(8));

        assert!(geo_report.converged() && pw_report.converged());
        assert!(
            geo_report.ticks < pw_report.ticks,
            "geographic gossip used {} ticks, pairwise {}",
            geo_report.ticks,
            pw_report.ticks
        );
    }

    #[test]
    fn rejection_sampled_selector_also_converges() {
        let g = graph(128, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let selector = TargetSelector::rejection_sampled(&g, 10_000, 10, &mut rng);
        let values = InitialCondition::Bimodal.generate(g.len(), &mut rng);
        let mut gossip = GeographicGossip::with_selector(&g, values, selector).unwrap();
        let report = AsyncEngine::new(g.len()).run(
            &mut gossip,
            StopCondition::at_epsilon(0.1).with_max_ticks(500_000),
            &mut rng,
        );
        assert!(report.converged());
    }

    #[test]
    fn faulty_step_matches_plain_step_without_faults() {
        let g = graph(96, 12);
        let mut rng_a = ChaCha8Rng::seed_from_u64(13);
        let mut rng_b = rng_a.clone();
        let values = InitialCondition::Spike.generate(g.len(), &mut rng_a);
        let _ = InitialCondition::Spike.generate(g.len(), &mut rng_b);
        let mut plain = GeographicGossip::new(&g, values.clone()).unwrap();
        let mut faulty = GeographicGossip::new(&g, values).unwrap();
        let mut clock_a = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut clock_b = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut tx_a = TransmissionCounter::new();
        let mut tx_b = TransmissionCounter::new();
        let none = FaultContext::new(false, &[], &[]);
        for _ in 0..2_000 {
            let ta = clock_a.next_tick(&mut rng_a);
            let tb = clock_b.next_tick(&mut rng_b);
            plain.step(ta, &mut tx_a, &mut rng_a);
            faulty.step_faulty(tb, &mut tx_b, &mut rng_b, &none);
        }
        assert_eq!(plain.state().values(), faulty.state().values());
        assert_eq!(tx_a.total(), tx_b.total());
        assert_eq!(plain.exchanges(), faulty.exchanges());
    }

    #[test]
    fn dropped_rounds_pay_their_hops_without_averaging() {
        let g = graph(96, 14);
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let mut gossip = GeographicGossip::new(&g, values).unwrap();
        let mut clock = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut tx = TransmissionCounter::new();
        let before = gossip.state().values().to_vec();
        let dropped = FaultContext::new(true, &[], &[]);
        for _ in 0..500 {
            let tick = clock.next_tick(&mut rng);
            gossip.step_faulty(tick, &mut tx, &mut rng, &dropped);
        }
        assert_eq!(gossip.state().values(), &before[..]);
        assert_eq!(gossip.exchanges(), 0);
        assert!(tx.routing() > 0, "dropped rounds still pay routed hops");
    }

    #[test]
    fn routes_exchange_with_a_live_partner_when_the_target_region_is_dead() {
        let g = graph(256, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let values = InitialCondition::Ramp.generate(g.len(), &mut rng);
        // Kill the right half of the square; all activations come from live
        // sensors (the wrapper guarantees that), so only routing sees death.
        let alive: Vec<bool> = (0..g.len()).map(|i| g.position(i.into()).x < 0.5).collect();
        let mut gossip = GeographicGossip::new(&g, values).unwrap();
        let mut clock = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut tx = TransmissionCounter::new();
        let ctx = FaultContext::new(false, &alive, &[]);
        let before = gossip.state().values().to_vec();
        let mut exchanged = 0u64;
        for _ in 0..2_000 {
            let tick = clock.next_tick(&mut rng);
            if !alive[tick.node.index()] {
                continue;
            }
            gossip.step_faulty(tick, &mut tx, &mut rng, &ctx);
            exchanged = gossip.exchanges();
        }
        assert!(exchanged > 0, "live sensors keep exchanging");
        // Dead sensors never move: they are neither partners nor termini.
        for (i, (&b, &a)) in before
            .iter()
            .zip(gossip.state().values().iter())
            .enumerate()
        {
            if !alive[i] {
                assert_eq!(b, a, "dead sensor {i} changed value");
            }
        }
    }

    #[test]
    fn draw_and_commit_replay_the_sequential_step_bit_for_bit() {
        use rand::RngCore;
        let g = graph(128, 18);
        for selector in [
            TargetSelector::NearestToUniformPosition,
            TargetSelector::UniformByIndex,
        ] {
            let mut rng_seq = ChaCha8Rng::seed_from_u64(19);
            let mut rng_batch = rng_seq.clone();
            let values = InitialCondition::Spike.generate(g.len(), &mut rng_seq);
            let _ = InitialCondition::Spike.generate(g.len(), &mut rng_batch);
            let mut seq =
                GeographicGossip::with_selector(&g, values.clone(), selector.clone()).unwrap();
            let mut batch = GeographicGossip::with_selector(&g, values, selector).unwrap();
            let mut clock_seq = geogossip_sim::GlobalPoissonClock::new(g.len());
            let mut clock_batch = clock_seq.clone();
            let mut tx_seq = TransmissionCounter::new();
            let mut tx_batch = TransmissionCounter::new();
            for _ in 0..2_000 {
                let ta = clock_seq.next_tick(&mut rng_seq);
                seq.step(ta, &mut tx_seq, &mut rng_seq);
                let tb = clock_batch.next_tick(&mut rng_batch);
                let plan = batch.draw_plan(tb, &mut rng_batch);
                let resolved = geogossip_sim::batch::resolve_plan(&g, tb.node, &plan);
                batch.commit_plan(tb, &resolved, &mut tx_batch);
                // The RNG streams must stay in lockstep after every tick.
                assert_eq!(rng_seq.next_u64(), rng_batch.next_u64());
            }
            assert_eq!(seq.state().values(), batch.state().values());
            assert_eq!(tx_seq.total(), tx_batch.total());
            assert_eq!(seq.exchanges(), batch.exchanges());
            assert_eq!(seq.failed_routes(), batch.failed_routes());
        }
    }

    #[test]
    fn single_node_network_is_a_noop() {
        use geogossip_geometry::Point;
        let g = GeometricGraph::build(vec![Point::new(0.5, 0.5)], 0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut gossip = GeographicGossip::new(&g, vec![3.0]).unwrap();
        let report = AsyncEngine::new(1).run(
            &mut gossip,
            StopCondition::at_epsilon(0.5).with_max_ticks(10),
            &mut rng,
        );
        // A single node is already "averaged".
        assert!(report.converged());
        assert_eq!(report.transmissions.total(), 0);
    }
}
