//! The transport schema: how a scenario's protocol is *executed*.
//!
//! By default every scenario runs on the shared-memory [`AsyncEngine`]: one
//! `GossipState`, activations mutating it in place. The optional `transport`
//! key on a [`ScenarioSpec`] switches the trial onto a **message-passing
//! runtime** (implemented by `geogossip-net` and attached to the runner as a
//! [`TransportRuntime`]): each sensor becomes an actor with an inbox,
//! protocol steps become typed messages with per-message delivery times drawn
//! from a [`LatencyModel`], and the trial additionally reports a message cost
//! ledger (sent / delivered / in-flight peak).
//!
//! # Schema stability
//!
//! The `transport` key is strictly additive, like `faults` before it: a spec
//! without the key never constructs the net layer and is bit-identical to the
//! pre-transport output. All transport randomness (latency draws, wire drop
//! and duplication decisions) comes from the dedicated
//! `(seed, trial, `[`NET_STREAM_LABEL`]`)` stream, and the instant and fixed
//! models draw **nothing** from it — the stream's consumption pattern is part
//! of the schema, exactly like the fault stream.
//!
//! The optional `reliability` block makes the wire itself unreliable. Its
//! per-message draw order is frozen: **latency first, then drop, then
//! duplicate** — and the drop (duplicate) draw only happens when the drop
//! (duplication) probability is strictly positive, so a lossless
//! `reliability` block consumes exactly the draws the no-reliability
//! schedule consumes and stays bit-identical to it (pinned by
//! `tests/net_reliability.rs`).
//!
//! [`AsyncEngine`]: crate::engine::AsyncEngine
//! [`ScenarioSpec`]: crate::scenario::ScenarioSpec

use crate::engine::{EngineReport, StopCondition};
use crate::error::ProtocolError;
use crate::fault::FaultSpec;
use crate::scenario::spec::ProtocolSpec;
use geogossip_analysis::json::JsonValue;
use geogossip_graph::GeometricGraph;
use geogossip_telemetry::Probe;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The dedicated seed-stream label for transport-layer randomness
/// (per-message latency draws): `seeds.trial(NET_STREAM_LABEL, trial)`.
///
/// Changing this constant (or what is drawn from the stream on a given
/// latency model) is a **schema change**: it silently alters every committed
/// net-transport scenario. The instant and fixed models must consume nothing
/// from it — `tests/net_parity.rs` pins that discipline.
pub const NET_STREAM_LABEL: &str = "net";

/// Per-message delivery-delay model of the simulated network.
///
/// Delays are in simulation-time units (the global Poisson clock ticks at
/// rate `n`, so one unit of time ≈ one activation per sensor).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Zero-delay delivery: every message sent during an activation is
    /// delivered (and its cascade fully drained) before the next clock tick.
    /// This is the oracle schedule — bit-identical to the shared-memory
    /// engine — and draws nothing from the net stream.
    #[default]
    Instant,
    /// Every message takes exactly this many time units. Deterministic, so
    /// it also draws nothing from the net stream.
    Fixed(f64),
    /// Exponentially distributed delay with the given mean, drawn per
    /// message from the dedicated net stream.
    Exponential {
        /// Mean delay in simulation-time units (must be positive).
        mean: f64,
    },
}

impl LatencyModel {
    /// Draws one delivery delay. Only [`LatencyModel::Exponential`] consumes
    /// randomness; the other models leave `net_rng` untouched (part of the
    /// stream-label-as-schema contract).
    pub fn sample<R: Rng + ?Sized>(&self, net_rng: &mut R) -> f64 {
        match self {
            LatencyModel::Instant => 0.0,
            LatencyModel::Fixed(delay) => *delay,
            LatencyModel::Exponential { mean } => {
                geogossip_geometry::sampling::exponential(1.0 / mean, net_rng)
            }
        }
    }

    /// The mean delay of the model — the severity coordinate used by the
    /// lab's latency-degradation verdicts.
    pub fn mean(&self) -> f64 {
        match self {
            LatencyModel::Instant => 0.0,
            LatencyModel::Fixed(delay) => *delay,
            LatencyModel::Exponential { mean } => *mean,
        }
    }
}

/// Timeout/retry policy of the unreliable wire: how a sender reacts to a
/// message the wire dropped. The first retransmission fires `timeout` after
/// the drop, the `k`-th after `timeout · backoff^(k-1)`, up to `max_retries`
/// retransmissions; exhausting the budget abandons the message (and with it
/// the gossip round it carried).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Base retransmission delay in simulation-time units (finite, > 0).
    pub timeout: f64,
    /// Exponential backoff multiplier applied per retransmission (finite,
    /// ≥ 1; `1.0` = constant timeout).
    pub backoff: f64,
    /// Retransmission budget per message; `0` disables retries entirely.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: 0.25,
            backoff: 2.0,
            max_retries: 3,
        }
    }
}

/// The unreliable-wire model under `transport.reliability`: per-message drop
/// and duplication probabilities, plus the [`RetryPolicy`] governing
/// retransmissions. The default block is lossless and decodes/renders as the
/// absent key — schema stability, like `faults` and `transport` themselves.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReliabilitySpec {
    /// Probability a sent message is dropped by the wire (in `[0, 1)`).
    pub drop: f64,
    /// Probability a delivered message arrives twice (in `[0, 1)`).
    pub duplicate: f64,
    /// Timeout/retry/backoff policy for dropped messages.
    pub retry: RetryPolicy,
}

impl ReliabilitySpec {
    /// `true` when the wire never drops or duplicates — the configuration
    /// that must be bit-identical to the no-reliability schedule (the retry
    /// policy is then irrelevant: no drop ever arms a timer).
    pub fn is_lossless(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0
    }

    /// Validates the block; errors name the `transport.reliability.…` path.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if !self.drop.is_finite() || !(0.0..1.0).contains(&self.drop) {
            return Err(ProtocolError::invalid(
                "transport.reliability.drop",
                "must be a probability in [0, 1)",
            ));
        }
        if !self.duplicate.is_finite() || !(0.0..1.0).contains(&self.duplicate) {
            return Err(ProtocolError::invalid(
                "transport.reliability.duplicate",
                "must be a probability in [0, 1)",
            ));
        }
        if !self.retry.timeout.is_finite() || self.retry.timeout <= 0.0 {
            return Err(ProtocolError::invalid(
                "transport.reliability.retry.timeout",
                "must be a finite positive delay",
            ));
        }
        if !self.retry.backoff.is_finite() || self.retry.backoff < 1.0 {
            return Err(ProtocolError::invalid(
                "transport.reliability.retry.backoff",
                "must be a finite multiplier >= 1",
            ));
        }
        Ok(())
    }

    /// Compact coordinate token, e.g. `rel=drop:0.3+dup:0.05`. Parts are
    /// colon-separated (not `=`-separated) so a group key carrying this token
    /// can never be mistaken for a fault coordinate tail.
    pub fn token(&self) -> String {
        format!("rel=drop:{}+dup:{}", self.drop, self.duplicate)
    }

    /// Serialises to the JSON `reliability` object, omitting default-valued
    /// keys (an all-default block renders as `{}` and is itself omitted by
    /// [`TransportSpec::to_json_value`]).
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = Vec::new();
        if self.drop != 0.0 {
            fields.push(("drop", self.drop.into()));
        }
        if self.duplicate != 0.0 {
            fields.push(("duplicate", self.duplicate.into()));
        }
        if self.retry != RetryPolicy::default() {
            let default = RetryPolicy::default();
            let mut retry: Vec<(&str, JsonValue)> = Vec::new();
            if self.retry.timeout != default.timeout {
                retry.push(("timeout", self.retry.timeout.into()));
            }
            if self.retry.backoff != default.backoff {
                retry.push(("backoff", self.retry.backoff.into()));
            }
            if self.retry.max_retries != default.max_retries {
                retry.push(("max-retries", (self.retry.max_retries as f64).into()));
            }
            fields.push(("retry", JsonValue::object(retry)));
        }
        JsonValue::object(fields)
    }

    /// Decodes a `transport.reliability` object; unknown keys hard-error.
    pub fn decode(doc: &JsonValue) -> Result<Self, ProtocolError> {
        let obj = doc
            .as_object()
            .ok_or_else(|| ProtocolError::malformed("`transport.reliability` must be an object"))?;
        for (key, _) in obj {
            if !matches!(key.as_str(), "drop" | "duplicate" | "retry") {
                return Err(ProtocolError::malformed(format!(
                    "unknown transport.reliability key `{key}` (known: drop, duplicate, retry)"
                )));
            }
        }
        let number = |key: &str, fallback: f64| -> Result<f64, ProtocolError> {
            match doc.get(key) {
                None => Ok(fallback),
                Some(value) => value.as_f64().ok_or_else(|| {
                    ProtocolError::malformed(format!(
                        "`transport.reliability.{key}` must be a number"
                    ))
                }),
            }
        };
        let drop = number("drop", 0.0)?;
        let duplicate = number("duplicate", 0.0)?;
        let retry = match doc.get("retry") {
            None => RetryPolicy::default(),
            Some(value) => {
                let fields = value.as_object().ok_or_else(|| {
                    ProtocolError::malformed("`transport.reliability.retry` must be an object")
                })?;
                for (key, _) in fields {
                    if !matches!(key.as_str(), "timeout" | "backoff" | "max-retries") {
                        return Err(ProtocolError::malformed(format!(
                            "unknown transport.reliability.retry key `{key}` \
                             (known: timeout, backoff, max-retries)"
                        )));
                    }
                }
                let default = RetryPolicy::default();
                let field = |key: &str, fallback: f64| -> Result<f64, ProtocolError> {
                    match value.get(key) {
                        None => Ok(fallback),
                        Some(v) => v.as_f64().ok_or_else(|| {
                            ProtocolError::malformed(format!(
                                "`transport.reliability.retry.{key}` must be a number"
                            ))
                        }),
                    }
                };
                let timeout = field("timeout", default.timeout)?;
                let backoff = field("backoff", default.backoff)?;
                let max_retries = match value.get("max-retries") {
                    None => default.max_retries,
                    Some(v) => match v.as_f64() {
                        Some(m) if m >= 0.0 && m.fract() == 0.0 && m <= u32::MAX as f64 => m as u32,
                        _ => {
                            return Err(ProtocolError::malformed(
                                "`transport.reliability.retry.max-retries` must be a \
                                 non-negative whole number",
                            ))
                        }
                    },
                };
                RetryPolicy {
                    timeout,
                    backoff,
                    max_retries,
                }
            }
        };
        Ok(ReliabilitySpec {
            drop,
            duplicate,
            retry,
        })
    }
}

/// The declarative transport model of a scenario. Absent from the JSON
/// schema = shared-memory engine; present = message-passing runtime with the
/// given latency model (`{"latency": "instant"}` runs the net layer on the
/// oracle schedule) and wire-reliability model (absent = lossless wire).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TransportSpec {
    /// Per-message delivery-delay model.
    pub latency: LatencyModel,
    /// Wire drop/duplication model with its retry policy (default =
    /// lossless, bit-identical to omitting the key).
    pub reliability: ReliabilitySpec,
}

impl TransportSpec {
    /// A transport with the given latency model and a lossless wire — the
    /// pre-reliability spelling, kept as the convenient constructor.
    pub fn with_latency(latency: LatencyModel) -> Self {
        TransportSpec {
            latency,
            ..TransportSpec::default()
        }
    }

    /// Validates every transport parameter. Errors name the offending spec
    /// path (`transport.latency.…`, `transport.reliability.…`), matching the
    /// fault-spec convention.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        match self.latency {
            LatencyModel::Instant => {}
            LatencyModel::Fixed(delay) => {
                if !delay.is_finite() || delay < 0.0 {
                    return Err(ProtocolError::invalid(
                        "transport.latency.fixed",
                        "must be a finite non-negative delay",
                    ));
                }
            }
            LatencyModel::Exponential { mean } => {
                if !mean.is_finite() || mean <= 0.0 {
                    return Err(ProtocolError::invalid(
                        "transport.latency.exp.mean",
                        "must be a finite positive mean delay",
                    ));
                }
            }
        }
        self.reliability.validate()
    }

    /// Compact coordinate token for group keys and reports, e.g.
    /// `lat=instant`, `lat=fixed:0.5` or `lat=exp:0.25`; an unreliable wire
    /// appends its own segment: `lat=instant/rel=drop:0.3+dup:0.05`.
    pub fn token(&self) -> String {
        let latency = match self.latency {
            LatencyModel::Instant => "lat=instant".to_string(),
            LatencyModel::Fixed(delay) => format!("lat=fixed:{delay}"),
            LatencyModel::Exponential { mean } => format!("lat=exp:{mean}"),
        };
        if self.reliability.is_lossless() {
            latency
        } else {
            format!("{latency}/{}", self.reliability.token())
        }
    }

    /// Serialises to the JSON `transport` object. The `reliability` key is
    /// omitted when lossless-with-default-retry (schema stability).
    pub fn to_json_value(&self) -> JsonValue {
        let latency = match self.latency {
            LatencyModel::Instant => JsonValue::string("instant"),
            LatencyModel::Fixed(delay) => JsonValue::object(vec![("fixed", delay.into())]),
            LatencyModel::Exponential { mean } => JsonValue::object(vec![(
                "exp",
                JsonValue::object(vec![("mean", mean.into())]),
            )]),
        };
        let mut fields = vec![("latency", latency)];
        if self.reliability != ReliabilitySpec::default() {
            fields.push(("reliability", self.reliability.to_json_value()));
        }
        JsonValue::object(fields)
    }

    /// Decodes a `transport` object; unknown keys hard-error (the same
    /// typos-fail-loudly rule as every other schema object).
    pub fn decode(doc: &JsonValue) -> Result<Self, ProtocolError> {
        let obj = doc
            .as_object()
            .ok_or_else(|| ProtocolError::malformed("`transport` must be an object"))?;
        for (key, _) in obj {
            if !matches!(key.as_str(), "latency" | "reliability") {
                return Err(ProtocolError::malformed(format!(
                    "unknown transport key `{key}` (known: latency, reliability)"
                )));
            }
        }
        let reliability = match doc.get("reliability") {
            None => ReliabilitySpec::default(),
            Some(value) => ReliabilitySpec::decode(value)?,
        };
        let latency = match doc.get("latency") {
            None => LatencyModel::Instant,
            Some(JsonValue::String(token)) if token == "instant" => LatencyModel::Instant,
            Some(JsonValue::String(token)) => {
                return Err(ProtocolError::malformed(format!(
                    "unknown `transport.latency` model `{token}` (known: \"instant\", \
                     {{\"fixed\": seconds}}, {{\"exp\": {{\"mean\": seconds}}}})"
                )));
            }
            Some(value) => {
                let fields = value.as_object().ok_or_else(|| {
                    ProtocolError::malformed("`transport.latency` must be \"instant\" or an object")
                })?;
                for (key, _) in fields {
                    if !matches!(key.as_str(), "fixed" | "exp") {
                        return Err(ProtocolError::malformed(format!(
                            "unknown transport.latency key `{key}` (known: fixed, exp)"
                        )));
                    }
                }
                match (value.get("fixed"), value.get("exp")) {
                    (Some(delay), None) => {
                        LatencyModel::Fixed(delay.as_f64().ok_or_else(|| {
                            ProtocolError::malformed("`transport.latency.fixed` must be a number")
                        })?)
                    }
                    (None, Some(exp)) => {
                        let exp_obj = exp.as_object().ok_or_else(|| {
                            ProtocolError::malformed("`transport.latency.exp` must be an object")
                        })?;
                        for (key, _) in exp_obj {
                            if key.as_str() != "mean" {
                                return Err(ProtocolError::malformed(format!(
                                    "unknown transport.latency.exp key `{key}` (known: mean)"
                                )));
                            }
                        }
                        let mean =
                            exp.get("mean").and_then(JsonValue::as_f64).ok_or_else(|| {
                                ProtocolError::malformed(
                                    "`transport.latency.exp.mean` must be a number",
                                )
                            })?;
                        LatencyModel::Exponential { mean }
                    }
                    _ => {
                        return Err(ProtocolError::malformed(
                            "`transport.latency` must hold exactly one of `fixed` or `exp`",
                        ));
                    }
                }
            }
        };
        Ok(TransportSpec {
            latency,
            reliability,
        })
    }
}

/// One trial's outcome from a [`TransportRuntime`]: the engine-shaped report
/// plus the protocol-level observables the runner folds into a `TrialCost`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportTrial {
    /// The run report, shaped exactly like the shared-memory engine's (on the
    /// instant schedule it must be bit-identical to it).
    pub report: EngineReport,
    /// Display label of the protocol that ran (e.g. `pairwise (Boyd)`).
    pub label: String,
    /// Protocol-defined round count, or `None` to fall back to ticks.
    pub rounds: Option<u64>,
    /// Protocol metrics, with the message cost ledger appended
    /// (`messages_sent`, `messages_delivered`, `messages_in_flight_peak`).
    pub metrics: Vec<(String, f64)>,
}

/// A message-passing execution backend for scenario trials.
///
/// The canonical implementation is `geogossip_net::NetRuntime`; the trait
/// lives here (below the net crate) so the scenario [`Runner`] can dispatch
/// to it without `geogossip-sim` depending on `geogossip-net`. `rng` is the
/// trial's run stream (clock ticks and protocol draws — consumed exactly as
/// the shared-memory engine would); `net_rng` is the dedicated
/// [`NET_STREAM_LABEL`] stream (latency and wire-reliability draws only);
/// `fault_rng` is the dedicated [`FAULT_STREAM_LABEL`] stream, consumed only
/// when `faults` is non-default (stale/churn node-set construction draws, in
/// the same frozen order as the shared-memory fault wrapper).
///
/// [`Runner`]: crate::scenario::Runner
/// [`FAULT_STREAM_LABEL`]: crate::fault::FAULT_STREAM_LABEL
pub trait TransportRuntime: Send + Sync {
    /// Runs one trial of `protocol` over the simulated network.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] when the protocol has no message-passing
    /// implementation, its parameters are invalid, or the fault spec asks
    /// for something the net layer does not model; implementations name the
    /// offending spec path (`transport`, `faults.…`, `protocol.…`).
    ///
    /// `probe` is the optional telemetry observer: `None` must leave the
    /// trial bit-identical to a probe-free build, and a probed trial must
    /// emit only simulation-state-derived events (never wall clock) so its
    /// stream is byte-identical across reruns.
    #[allow(clippy::too_many_arguments)]
    fn run_trial(
        &self,
        protocol: &ProtocolSpec,
        transport: &TransportSpec,
        faults: &FaultSpec,
        graph: &GeometricGraph,
        values: Vec<f64>,
        stop: StopCondition,
        rng: &mut dyn RngCore,
        net_rng: &mut dyn RngCore,
        fault_rng: ChaCha8Rng,
        probe: Option<&mut (dyn Probe + '_)>,
    ) -> Result<TransportTrial, ProtocolError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn decode(json: &str) -> Result<TransportSpec, ProtocolError> {
        let doc = JsonValue::parse(json).expect("test JSON parses");
        TransportSpec::decode(&doc)
    }

    #[test]
    fn default_is_instant_and_valid() {
        let spec = TransportSpec::default();
        assert_eq!(spec.latency, LatencyModel::Instant);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.token(), "lat=instant");
    }

    #[test]
    fn json_round_trips_every_model() {
        for spec in [
            TransportSpec::default(),
            TransportSpec::with_latency(LatencyModel::Fixed(0.25)),
            TransportSpec::with_latency(LatencyModel::Exponential { mean: 0.125 }),
            TransportSpec {
                latency: LatencyModel::Fixed(0.25),
                reliability: ReliabilitySpec {
                    drop: 0.3,
                    duplicate: 0.05,
                    retry: RetryPolicy {
                        timeout: 0.5,
                        backoff: 1.5,
                        max_retries: 5,
                    },
                },
            },
            TransportSpec {
                latency: LatencyModel::Instant,
                reliability: ReliabilitySpec {
                    drop: 0.1,
                    ..ReliabilitySpec::default()
                },
            },
        ] {
            let rendered = spec.to_json_value().render();
            let reparsed = decode(&rendered).expect("rendered spec decodes");
            assert_eq!(reparsed, spec, "round trip changed {rendered}");
        }
    }

    #[test]
    fn empty_object_decodes_to_instant() {
        assert_eq!(decode("{}").unwrap(), TransportSpec::default());
        assert_eq!(
            decode(r#"{"latency": "instant"}"#).unwrap(),
            TransportSpec::default()
        );
    }

    #[test]
    fn unknown_keys_hard_error_with_path() {
        let err = decode(r#"{"latencyy": "instant"}"#).unwrap_err();
        assert!(err.to_string().contains("unknown transport key `latencyy`"));
        let err = decode(r#"{"latency": {"fixd": 0.5}}"#).unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown transport.latency key `fixd`"),
            "got `{err}`"
        );
        let err = decode(r#"{"latency": {"exp": {"mena": 0.5}}}"#).unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown transport.latency.exp key `mena`"),
            "got `{err}`"
        );
    }

    #[test]
    fn bad_values_hard_error_with_path() {
        let err = decode(r#"{"latency": "warp"}"#).unwrap_err();
        assert!(err.to_string().contains("transport.latency"), "got `{err}`");
        let err = decode(r#"{"latency": {"fixed": "slow"}}"#).unwrap_err();
        assert!(
            err.to_string().contains("`transport.latency.fixed`"),
            "got `{err}`"
        );
        let err = decode(r#"{"latency": {"fixed": 0.1, "exp": {"mean": 0.1}}}"#).unwrap_err();
        assert!(err.to_string().contains("exactly one of"), "got `{err}`");
    }

    #[test]
    fn validation_names_spec_paths() {
        let bad = TransportSpec::with_latency(LatencyModel::Fixed(-1.0));
        let err = bad.validate().unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::InvalidParameter { ref name, .. } if name == "transport.latency.fixed"
        ));
        let bad = TransportSpec::with_latency(LatencyModel::Exponential { mean: 0.0 });
        let err = bad.validate().unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::InvalidParameter { ref name, .. }
                if name == "transport.latency.exp.mean"
        ));
    }

    #[test]
    fn only_the_exponential_model_consumes_the_net_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let before = rng.clone();
        LatencyModel::Instant.sample(&mut rng);
        LatencyModel::Fixed(0.5).sample(&mut rng);
        let mut check = before.clone();
        for _ in 0..4 {
            assert_eq!(rng.next_u64(), check.next_u64(), "instant/fixed drew");
        }
        let mut exp_rng = before.clone();
        let delay = LatencyModel::Exponential { mean: 0.5 }.sample(&mut exp_rng);
        assert!(delay > 0.0);
        assert_ne!(exp_rng.next_u64(), {
            let mut c = before.clone();
            c.next_u64()
        });
    }

    #[test]
    fn mean_and_tokens_are_stable() {
        assert_eq!(LatencyModel::Instant.mean(), 0.0);
        assert_eq!(LatencyModel::Fixed(0.25).mean(), 0.25);
        assert_eq!(LatencyModel::Exponential { mean: 0.5 }.mean(), 0.5);
        assert_eq!(
            TransportSpec::with_latency(LatencyModel::Fixed(0.25)).token(),
            "lat=fixed:0.25"
        );
        assert_eq!(
            TransportSpec::with_latency(LatencyModel::Exponential { mean: 0.5 }).token(),
            "lat=exp:0.5"
        );
        let lossy = TransportSpec {
            latency: LatencyModel::Instant,
            reliability: ReliabilitySpec {
                drop: 0.3,
                duplicate: 0.05,
                ..ReliabilitySpec::default()
            },
        };
        assert_eq!(lossy.token(), "lat=instant/rel=drop:0.3+dup:0.05");
    }
}
