//! Poisson clocks.
//!
//! Each sensor's clock is a unit-rate Poisson process, independent across
//! sensors (Section 2 of the paper). Equivalently there is a single global
//! clock that is Poisson with rate `n`, each tick being assigned to a sensor
//! chosen uniformly at random; the simulator uses this equivalent global view
//! because it is what the analysis (and the `t`-th "global clock tick"
//! notation) refers to.

use geogossip_geometry::point::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single clock tick: the absolute time at which it fires and the sensor it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tick {
    /// Absolute simulation time of the tick.
    pub time: f64,
    /// Global tick index (1-based; the `t` of `x(t)` in the paper).
    pub index: u64,
    /// The sensor whose clock ticked.
    pub node: NodeId,
}

/// The global rate-`n` Poisson clock.
///
/// Inter-tick gaps are `Exp(n)`-distributed and each tick is assigned to a
/// node drawn uniformly at random, which is distributionally identical to `n`
/// independent unit-rate per-node clocks.
///
/// # Example
///
/// ```
/// use geogossip_sim::GlobalPoissonClock;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(9);
/// let mut clock = GlobalPoissonClock::new(10);
/// let a = clock.next_tick(&mut rng);
/// let b = clock.next_tick(&mut rng);
/// assert!(b.time > a.time);
/// assert_eq!(b.index, a.index + 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalPoissonClock {
    n: usize,
    now: f64,
    ticks: u64,
}

impl GlobalPoissonClock {
    /// Creates the clock for a network of `n` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — a network with no sensors has no clock.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a Poisson clock needs at least one sensor");
        GlobalPoissonClock {
            n,
            now: 0.0,
            ticks: 0,
        }
    }

    /// Number of sensors whose clocks are multiplexed onto this global clock.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Current simulation time (time of the last tick, 0 before any tick).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of ticks drawn so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Draws the next tick: advances time by an `Exp(n)` gap and assigns the
    /// tick to a uniformly random sensor.
    pub fn next_tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Tick {
        let gap = geogossip_geometry::sampling::exponential(self.n as f64, rng);
        self.now += gap;
        self.ticks += 1;
        Tick {
            time: self.now,
            index: self.ticks,
            node: NodeId(rng.gen_range(0..self.n)),
        }
    }

    /// Resets the clock to time zero without changing the population.
    pub fn reset(&mut self) {
        self.now = 0.0;
        self.ticks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn time_is_strictly_increasing() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut clock = GlobalPoissonClock::new(50);
        let mut prev = 0.0;
        for _ in 0..1000 {
            let t = clock.next_tick(&mut rng);
            assert!(t.time > prev);
            prev = t.time;
        }
        assert_eq!(clock.ticks(), 1000);
    }

    #[test]
    fn mean_gap_is_one_over_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 200;
        let mut clock = GlobalPoissonClock::new(n);
        let ticks = 50_000;
        for _ in 0..ticks {
            clock.next_tick(&mut rng);
        }
        let mean_gap = clock.now() / ticks as f64;
        assert!((mean_gap - 1.0 / n as f64).abs() < 0.1 / n as f64);
    }

    #[test]
    fn ticks_are_assigned_roughly_uniformly() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20;
        let mut clock = GlobalPoissonClock::new(n);
        let mut counts = vec![0usize; n];
        let draws = 40_000;
        for _ in 0..draws {
            counts[clock.next_tick(&mut rng).node.index()] += 1;
        }
        let expected = draws as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < 0.15 * expected,
                "count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn reset_rewinds_time_and_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut clock = GlobalPoissonClock::new(5);
        clock.next_tick(&mut rng);
        clock.reset();
        assert_eq!(clock.now(), 0.0);
        assert_eq!(clock.ticks(), 0);
        assert_eq!(clock.population(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn zero_population_rejected() {
        let _ = GlobalPoissonClock::new(0);
    }

    #[test]
    fn same_seed_gives_same_schedule() {
        let mut a = GlobalPoissonClock::new(30);
        let mut b = GlobalPoissonClock::new(30);
        let mut ra = ChaCha8Rng::seed_from_u64(7);
        let mut rb = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_tick(&mut ra), b.next_tick(&mut rb));
        }
    }
}
