//! Poisson clocks.
//!
//! Each sensor's clock is a unit-rate Poisson process, independent across
//! sensors (Section 2 of the paper). Equivalently there is a single global
//! clock that is Poisson with rate `n`, each tick being assigned to a sensor
//! chosen uniformly at random; the simulator uses this equivalent global view
//! because it is what the analysis (and the `t`-th "global clock tick"
//! notation) refers to.
//!
//! Two implementations share the identical draw sequence:
//! [`GlobalPoissonClock`] computes exact per-tick times, and
//! [`BatchedPoissonClock`] (the engine's hot-path clock) defers the gap
//! arithmetic into block reductions while staying bit-identical on the final
//! time and on every RNG draw.

use geogossip_geometry::point::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single clock tick: the absolute time at which it fires and the sensor it
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tick {
    /// Absolute simulation time of the tick.
    pub time: f64,
    /// Global tick index (1-based; the `t` of `x(t)` in the paper).
    pub index: u64,
    /// The sensor whose clock ticked.
    pub node: NodeId,
}

/// The global rate-`n` Poisson clock.
///
/// Inter-tick gaps are `Exp(n)`-distributed and each tick is assigned to a
/// node drawn uniformly at random, which is distributionally identical to `n`
/// independent unit-rate per-node clocks.
///
/// # Example
///
/// ```
/// use geogossip_sim::GlobalPoissonClock;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(9);
/// let mut clock = GlobalPoissonClock::new(10);
/// let a = clock.next_tick(&mut rng);
/// let b = clock.next_tick(&mut rng);
/// assert!(b.time > a.time);
/// assert_eq!(b.index, a.index + 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalPoissonClock {
    n: usize,
    now: f64,
    ticks: u64,
}

impl GlobalPoissonClock {
    /// Creates the clock for a network of `n` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — a network with no sensors has no clock.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a Poisson clock needs at least one sensor");
        GlobalPoissonClock {
            n,
            now: 0.0,
            ticks: 0,
        }
    }

    /// Number of sensors whose clocks are multiplexed onto this global clock.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Current simulation time (time of the last tick, 0 before any tick).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of ticks drawn so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Draws the next tick: advances time by an `Exp(n)` gap and assigns the
    /// tick to a uniformly random sensor.
    pub fn next_tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Tick {
        let gap = geogossip_geometry::sampling::exponential(self.n as f64, rng);
        self.now += gap;
        self.ticks += 1;
        Tick {
            time: self.now,
            index: self.ticks,
            node: NodeId(rng.gen_range(0..self.n)),
        }
    }

    /// Resets the clock to time zero without changing the population.
    pub fn reset(&mut self) {
        self.now = 0.0;
        self.ticks = 0;
    }
}

/// Number of pending uniform draws a [`BatchedPoissonClock`] accumulates
/// before reducing them to elapsed time in one pass.
const GAP_BLOCK: usize = 1024;

/// The global Poisson clock with block-deferred gap reduction — the engine's
/// hot-path clock.
///
/// Draws the **same RNG stream in the same order** as
/// [`GlobalPoissonClock::next_tick`] (one uniform for the `Exp(n)` gap, then
/// the tick's node), so a protocol sharing the RNG with the clock sees
/// bit-identical randomness. What is deferred is only the *arithmetic* on the
/// gap draws: instead of computing `-(ln(1 − u)) / n` and accumulating it on
/// every tick, the raw uniforms are buffered and reduced [`GAP_BLOCK`] at a
/// time in a tight loop over contiguous memory, keeping the transcendental
/// call and the serial floating-point accumulation off the per-tick critical
/// path. Because the reduction performs exactly the per-tick operations in
/// exactly the per-tick order, [`BatchedPoissonClock::now`] is **bit-identical**
/// to the sequential clock's time after any number of ticks (pinned by tests
/// below and by the engine parity suite).
///
/// The deferral has one observable consequence: the `time` field of the
/// [`Tick`]s this clock hands out is the exact simulation time *as of the last
/// completed block reduction* (coarse, always ≤ the true tick time), not the
/// per-tick time. No protocol in the workspace reads per-tick time — the
/// engine reports only the final [`BatchedPoissonClock::now`], which flushes —
/// but a driver that needs exact per-tick times should use
/// [`GlobalPoissonClock`] instead.
#[derive(Debug, Clone)]
pub struct BatchedPoissonClock {
    n: usize,
    rate: f64,
    /// Exact simulation time through the last reduced block.
    flushed: f64,
    ticks: u64,
    /// Raw uniform gap draws awaiting reduction, in draw order.
    pending: Vec<f64>,
}

impl BatchedPoissonClock {
    /// Creates the clock for a network of `n` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — a network with no sensors has no clock.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a Poisson clock needs at least one sensor");
        BatchedPoissonClock {
            n,
            rate: n as f64,
            flushed: 0.0,
            ticks: 0,
            pending: Vec::with_capacity(GAP_BLOCK),
        }
    }

    /// Number of sensors whose clocks are multiplexed onto this global clock.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of ticks drawn so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Draws the next tick: buffers the `Exp(n)` gap draw for block reduction
    /// and assigns the tick to a uniformly random sensor.
    ///
    /// The returned [`Tick::time`] is the coarse block-boundary time (see the
    /// type-level docs); `index` and `node` are exact.
    pub fn next_tick<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Tick {
        // Same draw order as `GlobalPoissonClock::next_tick`: gap uniform
        // first (the draw `sampling::exponential` performs), then the node.
        let u: f64 = rng.gen::<f64>();
        self.pending.push(u);
        if self.pending.len() == GAP_BLOCK {
            self.reduce_pending();
        }
        self.ticks += 1;
        Tick {
            time: self.flushed,
            index: self.ticks,
            node: NodeId(rng.gen_range(0..self.n)),
        }
    }

    /// Reduces the buffered gap draws into `flushed`, replicating the
    /// sequential clock's per-tick arithmetic (`-(ln(1 − u)) / n`, accumulated
    /// left to right) so the running time stays bit-identical.
    fn reduce_pending(&mut self) {
        for &u in &self.pending {
            // Inverse-CDF sampling; `1 - u` avoids ln(0). This expression
            // must match `geogossip_geometry::sampling::exponential` exactly.
            self.flushed += -(1.0 - u).ln() / self.rate;
        }
        self.pending.clear();
    }

    /// Current simulation time (time of the last tick, 0 before any tick).
    /// Flushes any pending gap draws first, so the result is exact.
    pub fn now(&mut self) -> f64 {
        self.reduce_pending();
        self.flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn time_is_strictly_increasing() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut clock = GlobalPoissonClock::new(50);
        let mut prev = 0.0;
        for _ in 0..1000 {
            let t = clock.next_tick(&mut rng);
            assert!(t.time > prev);
            prev = t.time;
        }
        assert_eq!(clock.ticks(), 1000);
    }

    #[test]
    fn mean_gap_is_one_over_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 200;
        let mut clock = GlobalPoissonClock::new(n);
        let ticks = 50_000;
        for _ in 0..ticks {
            clock.next_tick(&mut rng);
        }
        let mean_gap = clock.now() / ticks as f64;
        assert!((mean_gap - 1.0 / n as f64).abs() < 0.1 / n as f64);
    }

    #[test]
    fn ticks_are_assigned_roughly_uniformly() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20;
        let mut clock = GlobalPoissonClock::new(n);
        let mut counts = vec![0usize; n];
        let draws = 40_000;
        for _ in 0..draws {
            counts[clock.next_tick(&mut rng).node.index()] += 1;
        }
        let expected = draws as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < 0.15 * expected,
                "count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn reset_rewinds_time_and_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut clock = GlobalPoissonClock::new(5);
        clock.next_tick(&mut rng);
        clock.reset();
        assert_eq!(clock.now(), 0.0);
        assert_eq!(clock.ticks(), 0);
        assert_eq!(clock.population(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn zero_population_rejected() {
        let _ = GlobalPoissonClock::new(0);
    }

    #[test]
    fn same_seed_gives_same_schedule() {
        let mut a = GlobalPoissonClock::new(30);
        let mut b = GlobalPoissonClock::new(30);
        let mut ra = ChaCha8Rng::seed_from_u64(7);
        let mut rb = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_tick(&mut ra), b.next_tick(&mut rb));
        }
    }

    /// The batched clock must consume the identical RNG stream and reduce to
    /// the identical time as the sequential clock — across block boundaries
    /// (the tick counts straddle multiples of the internal block size).
    #[test]
    fn batched_clock_is_bit_identical_to_sequential() {
        for &(n, ticks) in &[(1usize, 10u64), (7, 1000), (30, 1024), (64, 5000)] {
            let mut sequential = GlobalPoissonClock::new(n);
            let mut batched = BatchedPoissonClock::new(n);
            let mut rs = ChaCha8Rng::seed_from_u64(1234 ^ ticks);
            let mut rb = rs.clone();
            for _ in 0..ticks {
                let s = sequential.next_tick(&mut rs);
                let b = batched.next_tick(&mut rb);
                assert_eq!(s.index, b.index);
                assert_eq!(s.node, b.node);
                // Coarse time trails the exact time but never exceeds it.
                assert!(b.time <= s.time);
            }
            // Same RNG consumption: the two generators are in the same state.
            assert_eq!(
                rand::RngCore::next_u64(&mut rs),
                rand::RngCore::next_u64(&mut rb)
            );
            // Same accumulated time, bit for bit (the deferred reduction
            // performs the identical operations in the identical order).
            assert_eq!(batched.now().to_bits(), sequential.now().to_bits());
            assert_eq!(batched.ticks(), sequential.ticks());
        }
    }

    #[test]
    fn batched_clock_now_is_idempotent_and_population_is_kept() {
        let mut clock = BatchedPoissonClock::new(9);
        assert_eq!(clock.population(), 9);
        assert_eq!(clock.now(), 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        clock.next_tick(&mut rng);
        let t1 = clock.now();
        assert!(t1 > 0.0);
        assert_eq!(clock.now(), t1);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn batched_zero_population_rejected() {
        let _ = BatchedPoissonClock::new(0);
    }
}
