//! Time-ordered event queue.
//!
//! Most of the gossip protocols are driven purely by clock ticks, but the
//! faithful state-machine version of the paper's protocol also needs to
//! schedule deferred work (e.g. "deactivate this square once its latency
//! budget has elapsed"). `EventQueue` is a minimal binary-heap priority queue
//! keyed by `f64` simulation time with deterministic FIFO tie-breaking.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a future simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledEvent<E> {
    /// Absolute time at which the event fires.
    pub time: f64,
    /// Monotone sequence number used to break ties deterministically
    /// (first-scheduled fires first).
    pub sequence: u64,
    /// The event payload.
    pub payload: E,
}

/// Internal heap entry ordered so the *earliest* event is popped first.
#[derive(Debug, Clone)]
struct HeapEntry<E> {
    time: f64,
    sequence: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the minimum time.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of [`ScheduledEvent`]s ordered by firing time.
///
/// # Example
///
/// ```
/// use geogossip_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop().unwrap().payload, "sooner");
/// assert_eq!(q.pop().unwrap().payload, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_sequence: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_sequence: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN (events must be orderable).
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(HeapEntry {
            time,
            sequence,
            payload,
        });
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|e| ScheduledEvent {
            time: e.time,
            sequence: e.sequence,
            payload: e.payload,
        })
    }

    /// The firing time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns every event scheduled at or before `time`, in
    /// firing order.
    pub fn drain_until(&mut self, time: f64) -> Vec<ScheduledEvent<E>> {
        let mut fired = Vec::new();
        while self.peek_time().is_some_and(|t| t <= time) {
            fired.push(self.pop().expect("peeked event must pop"));
        }
        fired
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.schedule(1.0, "b");
        q.schedule(1.0, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn drain_until_returns_only_due_events() {
        let mut q = EventQueue::new();
        q.schedule(0.5, "early");
        q.schedule(1.5, "late");
        q.schedule(1.0, "boundary");
        let fired = q.drain_until(1.0);
        let names: Vec<&str> = fired.iter().map(|e| e.payload).collect();
        assert_eq!(names, vec!["early", "boundary"]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.drain_until(10.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_times_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}
