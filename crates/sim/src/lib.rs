//! Asynchronous discrete-event simulation substrate.
//!
//! The paper's time model (Section 2): every sensor owns a clock that ticks as
//! an independent unit-rate Poisson process, which is equivalent to a single
//! global Poisson clock of rate `n` whose ticks are assigned to sensors
//! uniformly at random. Communication and packet forwarding are assumed to be
//! instantaneous relative to the mean slot length `1/n`. The cost of an
//! algorithm is the expected number of one-hop **transmissions** until the
//! ℓ₂ error drops below the target.
//!
//! This crate provides:
//!
//! * [`clock`] — Poisson clock processes (global-clock and per-node views).
//! * [`batch`] — conflict-partitioned tick batching: the engine's intra-trial
//!   parallel path (pre-drawn tick plans, concurrent route resolution,
//!   footprint-disjoint waves, draw-order commits), bit-identical to the
//!   sequential engine and opted into per scenario via the `parallelism` key.
//! * [`event`] — a time-ordered event queue for protocols that need to
//!   schedule future work (timeouts, deferred deactivations).
//! * [`metrics`] — transmission accounting and error-vs-cost trace recording;
//!   every experiment figure is produced from these traces.
//! * [`engine`] — a small driver that repeatedly draws the next clock tick,
//!   invokes a protocol callback ([`engine::Activation`], an object-safe
//!   trait), and stops on a caller-supplied condition.
//! * [`fault`] — deterministic fault injection (lossy transmissions, node
//!   churn, stale-value nodes) layered over any fault-aware protocol; a
//!   no-fault spec runs the bare protocol, bit-identically to before faults
//!   existed.
//! * [`transport`] — the optional execution-transport schema (latency models,
//!   the dedicated `"net"` seed stream) plus the [`transport::TransportRuntime`]
//!   trait the message-passing `geogossip-net` crate implements.
//! * [`rng`] — deterministic seed management so experiments are reproducible.
//!
//! The engine, the fault layer, and the scenario runner also accept a
//! telemetry [`Probe`](geogossip_telemetry::Probe) (`run_probed` /
//! `run_parallel_probed` / `Runner::run_probed`): deterministic structured
//! events streamed off the hot path. An unprobed run monomorphizes over the
//! zero-sized `NoProbe` and stays bit-identical to a probe-free build.
//! * [`field`] — initial measurement fields (spike, ramp, spatial gradient…).
//! * [`error`] — the [`ProtocolError`] shared by protocol constructors and
//!   scenario validation.
//! * [`scenario`] — scenarios as data: a serde [`scenario::ScenarioSpec`]
//!   (topology × field × protocol × stop condition × trials) and a
//!   [`scenario::Runner`] facade that executes specs with rayon-parallel,
//!   bit-deterministic trials.
//!
//! # Example
//!
//! ```
//! use geogossip_sim::clock::GlobalPoissonClock;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let mut clock = GlobalPoissonClock::new(100);
//! let tick = clock.next_tick(&mut rng);
//! assert!(tick.time > 0.0);
//! assert!(tick.node.index() < 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod clock;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod field;
pub mod metrics;
pub mod rng;
pub mod scenario;
pub mod transport;

pub use batch::{BatchActivation, ParallelSpec, ResolvedPlan, TickPlan, DEFAULT_TICK_BATCH};
pub use clock::{BatchedPoissonClock, GlobalPoissonClock, Tick};
pub use engine::{
    Activation, AsyncEngine, Clocking, EngineReport, SquaredError, StopCondition, StopReason,
};
pub use error::ProtocolError;
pub use event::{EventQueue, ScheduledEvent};
pub use fault::{ChurnEvent, FaultContext, FaultSpec, FaultSupport, FaultyActivation};
pub use field::{Field, InitialCondition};
pub use metrics::{ConvergenceTrace, TracePoint, TransmissionCounter};
pub use rng::SeedStream;
pub use transport::{
    LatencyModel, TransportRuntime, TransportSpec, TransportTrial, NET_STREAM_LABEL,
};
