//! Error type shared by protocol constructors and scenario validation.
//!
//! The type lives in `geogossip-sim` (the bottom of the protocol stack) so
//! that both the protocol implementations in `geogossip-core` and the
//! scenario layer in [`crate::scenario`] can report failures through one
//! vocabulary; `geogossip_core::error` re-exports it under its historical
//! path.

use std::error::Error;
use std::fmt;

/// Errors reported when constructing or configuring a gossip protocol or a
/// scenario.
///
/// Protocol constructors and [`crate::scenario::ScenarioSpec::validate`]
/// check their inputs (network size, value vector length, coefficient ranges,
/// stop-condition targets) and return this error instead of panicking, so
/// experiment harnesses can skip invalid configurations gracefully.
///
/// # Example
///
/// ```
/// use geogossip_sim::ProtocolError;
/// let err = ProtocolError::EmptyNetwork;
/// assert_eq!(err.to_string(), "network has no sensors");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The network has no sensors.
    EmptyNetwork,
    /// The initial value vector length does not match the number of sensors.
    ValueLengthMismatch {
        /// Number of sensors in the network.
        nodes: usize,
        /// Length of the supplied value vector.
        values: usize,
    },
    /// A numeric parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The hierarchical protocol needs a partition with at least two top-level
    /// cells that contain sensors.
    DegeneratePartition,
    /// A scenario referenced a protocol name the registry does not know.
    UnknownProtocol {
        /// The unresolved name.
        name: String,
    },
    /// A scenario document (JSON) could not be interpreted as a spec.
    MalformedSpec {
        /// What was wrong with the document.
        reason: String,
    },
}

impl ProtocolError {
    /// Convenience constructor for [`ProtocolError::InvalidParameter`].
    pub fn invalid(name: impl Into<String>, reason: impl Into<String>) -> Self {
        ProtocolError::InvalidParameter {
            name: name.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`ProtocolError::MalformedSpec`].
    pub fn malformed(reason: impl Into<String>) -> Self {
        ProtocolError::MalformedSpec {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::EmptyNetwork => write!(f, "network has no sensors"),
            ProtocolError::ValueLengthMismatch { nodes, values } => write!(
                f,
                "value vector length {values} does not match sensor count {nodes}"
            ),
            ProtocolError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            ProtocolError::DegeneratePartition => {
                write!(
                    f,
                    "hierarchical partition has fewer than two populated top-level cells"
                )
            }
            ProtocolError::UnknownProtocol { name } => {
                write!(f, "unknown protocol `{name}` (see the registry's listing)")
            }
            ProtocolError::MalformedSpec { reason } => {
                write!(f, "malformed scenario spec: {reason}")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(ProtocolError, &str)> = vec![
            (ProtocolError::EmptyNetwork, "network has no sensors"),
            (
                ProtocolError::ValueLengthMismatch {
                    nodes: 3,
                    values: 5,
                },
                "value vector length 5 does not match sensor count 3",
            ),
            (
                ProtocolError::invalid("epsilon", "must be positive"),
                "invalid parameter `epsilon`: must be positive",
            ),
            (
                ProtocolError::UnknownProtocol {
                    name: "gossipx".into(),
                },
                "unknown protocol `gossipx` (see the registry's listing)",
            ),
            (
                ProtocolError::malformed("expected an object"),
                "malformed scenario spec: expected an object",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ProtocolError>();
    }
}
