//! A minimal asynchronous simulation driver.
//!
//! The engine owns the global Poisson clock and the metrics; a protocol is any
//! [`Activation`] implementor that reacts to "the clock of sensor `v` ticked"
//! by mutating its own state and charging transmissions. The engine stops when
//! a caller-supplied [`StopCondition`] is met, and returns a compact
//! [`EngineReport`].
//!
//! Keeping the engine this small is deliberate: the paper's protocols differ
//! only in what happens on a tick, so the engine is the single place where the
//! time model and the stopping logic live.
//!
//! # The overhauled tick loop (and its preserved reference)
//!
//! [`AsyncEngine::run`] is the hot path: it draws ticks from a
//! [`BatchedPoissonClock`] (same RNG stream as the sequential clock, gap
//! arithmetic deferred into block reductions), checks convergence in the
//! **squared domain** (the protocol's cached `Σ(x−x̄)²` against a precomputed
//! `≳ ε²·‖x(0)−x̄·1‖²` threshold via [`Activation::squared_error`] — zero
//! sqrt/divides per tick; any apparent crossing is confirmed with the exact
//! [`Activation::relative_error`] before stopping, so the stopping tick cannot
//! drift), and caps the convergence trace by stride doubling
//! ([`AsyncEngine::max_trace_points`]). The pre-overhaul loop is preserved
//! verbatim as [`AsyncEngine::run_reference`], and the parity property tests
//! (`tests/engine_parity.rs` at the workspace root) pin the two paths
//! bit-identical — same reports, same termini and hop counts, same RNG
//! consumption — whenever the trace stays under the cap.
//!
//! # Object safety and the generic hot path
//!
//! [`Activation`] is **dyn-compatible**: `on_tick` takes its randomness as
//! `&mut dyn RngCore`, so protocols can be boxed, stored in registries, and
//! driven uniformly (`Box<dyn Activation>` — see [`crate::scenario`]).
//! Protocol implementations keep a zero-cost path by writing their tick logic
//! as an inherent generic method (`fn step<R: Rng + ?Sized>(...)`) and
//! forwarding the trait method to it; the only dynamic dispatch on the hot
//! path is then the RNG vtable (a handful of virtual `next_u64` calls per
//! tick, measured by `bench_baseline --append-dyn` to be within noise of the
//! fully monomorphised path).

use crate::clock::{BatchedPoissonClock, GlobalPoissonClock, Tick};
use crate::metrics::{ConvergenceTrace, TracePoint, TransmissionCounter};
use geogossip_geometry::point::NodeId;
use geogossip_telemetry::{Event, NoProbe, Probe};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A protocol's convergence metric exposed in the squared domain, for the
/// engine's sqrt-free per-tick stop check.
///
/// The contract (relative to [`Activation::relative_error`]):
/// `relative_error() == sqrt(current_sq) / initial` up to a few ulps of
/// floating-point evaluation. The engine only ever uses these values as a
/// **conservative pre-filter** — "is the squared deviation still clearly above
/// the squared threshold?" — and confirms any apparent crossing with the exact
/// `relative_error()` comparison, so a protocol whose squared view is a few
/// ulps off can never stop early or at a different tick than the exact check
/// would.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SquaredError {
    /// Current centered squared deviation `Σ (x_i − x̄)²` (the numerator of
    /// the relative error, squared). Must be `O(1)` amortised — the engine
    /// reads it every tick.
    pub current_sq: f64,
    /// Initial deviation `‖x(0) − x̄·1‖` (the *unsquared* denominator of the
    /// relative error). Constant over a run; the engine reads it once to
    /// precompute the squared threshold.
    pub initial: f64,
}

/// How an [`Activation`] consumes simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Clocking {
    /// Tick-driven: the engine draws Poisson clock ticks (an `Exp(n)` gap plus
    /// a uniformly random sensor per tick) from the run's RNG and hands them
    /// to the protocol. This is the paper's asynchronous time model.
    Poisson,
    /// Self-paced: the protocol defines its own round structure (e.g. the
    /// round-based affine recursion) and consumes **no** clock randomness;
    /// the engine feeds it synthetic ticks `1, 2, 3, …` assigned to sensor 0.
    /// The run's RNG is then consumed exclusively by the protocol itself,
    /// which keeps self-paced runs bit-identical to hand-driven round loops.
    SelfPaced,
}

/// A protocol that can be driven by the engine: it reacts to a clock tick by
/// updating its state, charging transmissions, and reporting its current
/// relative error.
///
/// The trait is object-safe; `Box<dyn Activation>` is the currency of the
/// protocol registry. Implementations should put their tick logic in an
/// inherent generic method and forward `on_tick` to it (see the module docs).
pub trait Activation {
    /// Handles the tick of `tick.node`, charging any transmissions to `tx` and
    /// using `rng` for the protocol's own randomness.
    fn on_tick(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore);

    /// Current relative ℓ₂ error `‖x − x̄·1‖ / ‖x(0) − x̄·1‖`.
    ///
    /// The engine calls this after **every** tick to decide whether to stop,
    /// so implementations must make it cheap — `O(1)` amortised. Protocols
    /// backed by `GossipState` get this for free from its incremental
    /// centered-norm tracking.
    fn relative_error(&self) -> f64;

    /// Stable protocol name, e.g. `"pairwise"`; used in tables and reports.
    fn name(&self) -> &str {
        "anonymous"
    }

    /// Human-readable configuration parameters, for reports.
    fn params(&self) -> Vec<(String, String)> {
        Vec::new()
    }

    /// Protocol-specific numeric outcomes (exchange counts, internal bounds),
    /// read after a run; keys are free-form but should be stable per protocol.
    fn metrics(&self) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// The protocol's own "round" counter, when it has a natural round
    /// structure distinct from engine ticks (the round-based affine protocol
    /// reports top-level rounds here). `None` means "ticks are the rounds".
    fn rounds(&self) -> Option<u64> {
        None
    }

    /// Whether the protocol can make no further progress (e.g. a stall
    /// detector fired or an internal round cap was hit). The engine stops
    /// with [`StopReason::ProtocolStalled`] when this turns true.
    fn halted(&self) -> bool {
        false
    }

    /// How this protocol consumes simulated time (defaults to the Poisson
    /// model).
    fn clocking(&self) -> Clocking {
        Clocking::Poisson
    }

    /// Preferred trace sampling interval in ticks, when the protocol has a
    /// natural reporting granularity. Self-paced round protocols return
    /// `Some(1)` so the trace records every round (a tick there already does
    /// `O(n)` work, and sampling at the engine's default `n`-tick interval
    /// would collapse a sub-`n`-round run to its endpoints). `None` defers to
    /// the engine's configured interval.
    fn trace_interval(&self) -> Option<u64> {
        None
    }

    /// The squared-domain view of the convergence metric, when the protocol
    /// can expose it in `O(1)` (see [`SquaredError`] for the contract).
    ///
    /// Protocols backed by `GossipState` forward to its cached centered
    /// squared norm, which lets the engine's per-tick stop check run without
    /// any sqrt or divide; the default `None` keeps the exact
    /// [`Activation::relative_error`] check per tick, so implementing this is
    /// purely an optimisation, never a behaviour change.
    fn squared_error(&self) -> Option<SquaredError> {
        None
    }

    /// Which fault kinds this protocol can model under fault injection (see
    /// [`crate::fault`]). The default declares **no** support, so the
    /// scenario runner rejects fault specs for protocols that have not
    /// implemented the semantics — faults are never silently ignored.
    fn fault_support(&self) -> crate::fault::FaultSupport {
        crate::fault::FaultSupport::default()
    }

    /// Handles a tick under fault injection: like [`Activation::on_tick`],
    /// plus the per-tick [`FaultContext`](crate::fault::FaultContext) (drop
    /// decision, liveness mask, stale set). Only the
    /// [`FaultyActivation`](crate::fault::FaultyActivation) wrapper calls
    /// this, and only for live sensors of a faulty scenario — the engine
    /// itself still drives [`Activation::on_tick`]. The default forwards to
    /// `on_tick`, ignoring the context; fault-aware protocols override it
    /// and must keep their *protocol* randomness draws identical to the
    /// fault-free path so loss/stale injection never perturbs partner
    /// selection.
    fn on_tick_faulty(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut dyn RngCore,
        faults: &crate::fault::FaultContext<'_>,
    ) {
        let _ = faults;
        self.on_tick(tick, tx, rng);
    }

    /// Handles a tick with a live telemetry probe attached: like
    /// [`Activation::on_tick`], plus the probe, so wrappers that observe
    /// per-tick outcomes (the fault layer's dead/lost/stale activations) can
    /// emit events. Engines call this **only** when a probe is attached and
    /// enabled; the unprobed hot path still calls `on_tick`, so the default
    /// forward here costs nothing when telemetry is off. Overrides must keep
    /// the simulation behaviour (state changes, charges, RNG draws) identical
    /// to `on_tick` — a probe is a pure observer.
    fn on_tick_probed(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut dyn RngCore,
        probe: &mut dyn Probe,
    ) {
        let _ = probe;
        self.on_tick(tick, tx, rng);
    }

    /// The protocol's batched view, when its ticks can be split into a
    /// sequential RNG-draw stage and a concurrent resolution stage (see
    /// [`crate::batch::BatchActivation`]). The default declares no support,
    /// so wrappers (fault injection) and protocols with value-dependent
    /// randomness fall back to the sequential engine path automatically —
    /// parallelism is an execution strategy, never a semantics change.
    fn as_batch(&mut self) -> Option<&mut dyn crate::batch::BatchActivation> {
        None
    }
}

/// When the engine should stop driving a protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopCondition {
    /// Stop once the relative error is at or below this value.
    pub epsilon: f64,
    /// Hard cap on the number of clock ticks (safety net for non-converging
    /// configurations); `None` means no cap.
    pub max_ticks: Option<u64>,
    /// Hard cap on the number of transmissions; `None` means no cap.
    pub max_transmissions: Option<u64>,
}

impl StopCondition {
    /// Stop at relative error `epsilon`, with generous default caps
    /// (`10^8` ticks, `10^9` transmissions) so runaway runs terminate.
    pub fn at_epsilon(epsilon: f64) -> Self {
        StopCondition {
            epsilon,
            max_ticks: Some(100_000_000),
            max_transmissions: Some(1_000_000_000),
        }
    }

    /// Replaces the tick cap.
    pub fn with_max_ticks(mut self, max: u64) -> Self {
        self.max_ticks = Some(max);
        self
    }

    /// Replaces the transmission cap.
    pub fn with_max_transmissions(mut self, max: u64) -> Self {
        self.max_transmissions = Some(max);
        self
    }

    /// Checks that the error target is usable: strictly positive and finite.
    ///
    /// A non-positive or non-finite `epsilon` would make the engine run until
    /// a budget cap silently; scenario validation surfaces it as an error
    /// instead.
    pub fn validate(&self) -> Result<(), crate::error::ProtocolError> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(crate::error::ProtocolError::invalid(
                "epsilon",
                format!(
                    "stop target must be strictly positive and finite, got {}",
                    self.epsilon
                ),
            ));
        }
        Ok(())
    }
}

/// Why the engine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The error target was reached.
    Converged,
    /// The tick cap was hit first.
    TickBudgetExhausted,
    /// The transmission cap was hit first.
    TransmissionBudgetExhausted,
    /// The protocol reported ([`Activation::halted`]) that it can make no
    /// further progress (stall detector or internal round cap).
    ProtocolStalled,
}

impl StopReason {
    /// Stable kebab-case token used by telemetry event streams.
    pub fn token(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::TickBudgetExhausted => "tick-budget-exhausted",
            StopReason::TransmissionBudgetExhausted => "transmission-budget-exhausted",
            StopReason::ProtocolStalled => "protocol-stalled",
        }
    }
}

/// Summary of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Final transmission counters.
    pub transmissions: TransmissionCounter,
    /// Number of global clock ticks consumed.
    pub ticks: u64,
    /// Simulation time at the end of the run.
    pub time: f64,
    /// Final relative error.
    pub final_error: f64,
    /// Error-vs-cost trace sampled every `sample_every` ticks.
    pub trace: ConvergenceTrace,
}

impl EngineReport {
    /// Whether the run reached its error target.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}

/// Default cap on recorded [`TracePoint`]s per run (initial sample plus
/// interior samples; the final sample is always appended on top). Beyond the
/// cap the engine doubles its sampling stride and thins the trace to match,
/// so a `10^6`-tick run keeps a bounded, evenly-strided trace instead of
/// accumulating one point per interval forever.
pub const DEFAULT_MAX_TRACE_POINTS: usize = 4096;

/// Multiplicative slack applied to the squared stop threshold so the
/// squared-domain pre-filter is strictly conservative.
///
/// The exact check compares `fl(fl(sqrt(S)) / D) ≤ ε`; whenever it holds,
/// real arithmetic gives `S ≤ (ε·D)²·(1 + O(δ))` with `δ = 2⁻⁵³`, so a
/// threshold of `fl(fl(ε·D)²)` inflated by `1 + 10⁻⁹` (nine orders of
/// magnitude more slack than the accumulated rounding) can never reject a
/// state the exact check would accept. States inside the slack band simply
/// fall through to the exact check.
///
/// Public so alternative drivers that must stop **bit-identically** to this
/// engine (the `geogossip-net` scheduler) reuse the same slack rather than
/// re-deriving it.
pub const SQ_THRESHOLD_SLACK: f64 = 1.0 + 1e-9;

/// The asynchronous engine: a Poisson clock plus bookkeeping.
#[derive(Debug, Clone)]
pub struct AsyncEngine {
    n: usize,
    sample_every: u64,
    max_trace_points: usize,
}

impl AsyncEngine {
    /// Creates an engine for a network of `n` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a Poisson clock needs at least one sensor");
        AsyncEngine {
            n,
            sample_every: (n as u64).max(1),
            max_trace_points: DEFAULT_MAX_TRACE_POINTS,
        }
    }

    /// Sets how many ticks elapse between consecutive trace samples
    /// (default: one sample per `n` ticks ≈ one per unit of simulated time).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn sample_every(mut self, every: u64) -> Self {
        assert!(every > 0, "sampling interval must be positive");
        self.sample_every = every;
        self
    }

    /// Sets the cap on recorded trace samples (default
    /// [`DEFAULT_MAX_TRACE_POINTS`]). When the trace reaches the cap, the
    /// engine doubles its sampling stride and thins the recorded samples to
    /// the new stride ([`ConvergenceTrace::thin_to_stride`]), so arbitrarily
    /// long runs hold a bounded trace whose points are exactly the multiples
    /// of the final stride. The final sample is appended on top of the cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is smaller than 2 (the trace must have room for the
    /// initial sample and at least one interior sample).
    pub fn max_trace_points(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "trace cap must allow at least two samples");
        self.max_trace_points = cap;
        self
    }

    /// Drives `protocol` until `stop` is satisfied, returning the run report.
    ///
    /// `protocol` may be unsized (`&mut dyn Activation`), so boxed registry
    /// protocols and concrete ones go through the same driver. Self-paced
    /// protocols ([`Clocking::SelfPaced`]) receive synthetic sequential ticks
    /// and leave the RNG entirely to the protocol; Poisson protocols share it
    /// with the clock exactly as before.
    ///
    /// This is the overhauled hot loop: batched clock, squared-domain stop
    /// pre-filter, strided trace cap (see the module docs). It is pinned
    /// bit-identical to [`AsyncEngine::run_reference`] whenever the trace
    /// stays under [`AsyncEngine::max_trace_points`].
    pub fn run<P, R>(&mut self, protocol: &mut P, stop: StopCondition, rng: &mut R) -> EngineReport
    where
        P: Activation + ?Sized,
        R: RngCore + ?Sized,
    {
        // `NoProbe::enabled()` is a compile-time `false`: this call
        // monomorphizes to exactly the pre-telemetry loop, with no event
        // construction and no probe branch surviving codegen (pinned by
        // `tests/telemetry_parity.rs`).
        self.run_with(protocol, stop, rng, NoProbe)
    }

    /// Like [`AsyncEngine::run`], but streaming deterministic events into
    /// `probe`: one [`Event::TickCommitted`] per tick, plus
    /// [`Event::ConvergenceCrossed`] when the stop check first confirms the
    /// threshold. Event content derives only from simulation state, so the
    /// stream is byte-identical across reruns; the report and RNG consumption
    /// are identical to the unprobed run.
    pub fn run_probed<P, R>(
        &mut self,
        protocol: &mut P,
        stop: StopCondition,
        rng: &mut R,
        probe: &mut dyn Probe,
    ) -> EngineReport
    where
        P: Activation + ?Sized,
        R: RngCore + ?Sized,
    {
        self.run_with(protocol, stop, rng, probe)
    }

    fn run_with<P, R, Pr>(
        &mut self,
        protocol: &mut P,
        stop: StopCondition,
        rng: &mut R,
        mut probe: Pr,
    ) -> EngineReport
    where
        P: Activation + ?Sized,
        R: RngCore + ?Sized,
        Pr: Probe,
    {
        let self_paced = protocol.clocking() == Clocking::SelfPaced;
        let mut stride = protocol
            .trace_interval()
            .unwrap_or(self.sample_every)
            .max(1);
        let mut clock = BatchedPoissonClock::new(self.n);
        let mut ticks: u64 = 0;
        let mut tx = TransmissionCounter::new();
        let mut trace = ConvergenceTrace::new();
        trace.push(TracePoint {
            transmissions: 0,
            ticks: 0,
            relative_error: protocol.relative_error(),
        });

        // Precompute the squared stop threshold: the per-tick check then
        // compares the protocol's cached Σ(x−x̄)² against it — no sqrt, no
        // divide. `threshold_hi` deliberately overshoots by
        // `SQ_THRESHOLD_SLACK`; crossings are confirmed with the exact check,
        // which keeps the stopping tick bit-identical to the reference loop.
        let threshold_hi = protocol.squared_error().map(|sq| {
            let target = stop.epsilon * sq.initial;
            (target * target) * SQ_THRESHOLD_SLACK
        });

        let reason = loop {
            // Squared-domain pre-filter: while the squared deviation is
            // clearly above the squared threshold, skip the exact (sqrt +
            // divide) comparison entirely.
            let clearly_above = match (threshold_hi, protocol.squared_error()) {
                (Some(hi), Some(sq)) => sq.current_sq > hi,
                _ => false,
            };
            if !clearly_above && protocol.relative_error() <= stop.epsilon {
                if probe.enabled() {
                    probe.on_event(Event::ConvergenceCrossed {
                        tick: ticks,
                        transmissions: tx.total(),
                        relative_error: protocol.relative_error(),
                    });
                }
                break StopReason::Converged;
            }
            if protocol.halted() {
                break StopReason::ProtocolStalled;
            }
            if stop.max_ticks.is_some_and(|m| ticks >= m) {
                break StopReason::TickBudgetExhausted;
            }
            if stop.max_transmissions.is_some_and(|m| tx.total() >= m) {
                break StopReason::TransmissionBudgetExhausted;
            }
            let tick = if self_paced {
                ticks += 1;
                Tick {
                    time: ticks as f64,
                    index: ticks,
                    node: NodeId(0),
                }
            } else {
                let tick = clock.next_tick(&mut *rng);
                ticks = tick.index;
                tick
            };
            // `&mut &mut R` coerces to `&mut dyn RngCore` via the blanket
            // `RngCore for &mut R` impl, without requiring `R: Sized`.
            let mut reborrow = &mut *rng;
            if probe.enabled() {
                protocol.on_tick_probed(tick, &mut tx, &mut reborrow, &mut probe);
                probe.on_event(Event::TickCommitted {
                    tick: tick.index,
                    node: tick.node.index() as u32,
                    sim_time: tick.time,
                    transmissions: tx.total(),
                });
            } else {
                protocol.on_tick(tick, &mut tx, &mut reborrow);
            }
            if tick.index.is_multiple_of(stride) {
                // Cap the trace by stride doubling: beyond the cap, halve the
                // sampling density (thinning what was already recorded so the
                // trace is exactly "sampled at the final stride throughout").
                while trace.len() >= self.max_trace_points {
                    stride = stride.saturating_mul(2);
                    trace.thin_to_stride(stride);
                }
                if tick.index.is_multiple_of(stride) {
                    trace.push(TracePoint {
                        transmissions: tx.total(),
                        ticks: tick.index,
                        relative_error: protocol.relative_error(),
                    });
                }
            }
        };

        trace.push(TracePoint {
            transmissions: tx.total(),
            ticks,
            relative_error: protocol.relative_error(),
        });
        EngineReport {
            reason,
            transmissions: tx,
            ticks,
            time: if self_paced {
                ticks as f64
            } else {
                clock.now()
            },
            final_error: protocol.relative_error(),
            trace,
        }
    }

    /// Drives `protocol` like [`AsyncEngine::run`], but with intra-trial
    /// parallelism: ticks are pre-drawn in batches, their value-independent
    /// heavy work (greedy route walks) is resolved concurrently across the
    /// batch, the batch is partitioned into conflict-free waves by footprint
    /// disjointness, and commits replay sequentially in draw order (see
    /// [`crate::batch`] for why each stage is where it is).
    ///
    /// **Bit-identical to the sequential paths**: reports, traces, metric
    /// counters, and the RNG end state match [`AsyncEngine::run`] and
    /// [`AsyncEngine::run_reference`] exactly, for every thread count and
    /// batch size — pinned by `tests/parallel_engine_parity.rs`. The RNG must
    /// be `Clone` because a run that stops mid-batch rewinds to the batch
    /// start and redraws exactly the committed ticks, leaving the generator
    /// in the same state the sequential engine leaves it in.
    ///
    /// Self-paced protocols have no Poisson tick stream to batch and are
    /// delegated to [`AsyncEngine::run`] unchanged.
    pub fn run_parallel<P, R>(
        &mut self,
        protocol: &mut P,
        stop: StopCondition,
        rng: &mut R,
        par: crate::batch::ParallelSpec,
    ) -> EngineReport
    where
        P: crate::batch::BatchActivation + ?Sized,
        R: RngCore + Clone,
    {
        self.run_parallel_with(protocol, stop, rng, par, NoProbe)
    }

    /// Like [`AsyncEngine::run_parallel`], but streaming deterministic events
    /// into `probe`. Events are emitted from the sequential commit loop in
    /// draw order, so the stream is byte-identical to
    /// [`AsyncEngine::run_probed`]'s for every thread count and batch size;
    /// a mid-batch stop emits nothing for the rewound (uncommitted) ticks.
    pub fn run_parallel_probed<P, R>(
        &mut self,
        protocol: &mut P,
        stop: StopCondition,
        rng: &mut R,
        par: crate::batch::ParallelSpec,
        probe: &mut dyn Probe,
    ) -> EngineReport
    where
        P: crate::batch::BatchActivation + ?Sized,
        R: RngCore + Clone,
    {
        self.run_parallel_with(protocol, stop, rng, par, probe)
    }

    fn run_parallel_with<P, R, Pr>(
        &mut self,
        protocol: &mut P,
        stop: StopCondition,
        rng: &mut R,
        par: crate::batch::ParallelSpec,
        mut probe: Pr,
    ) -> EngineReport
    where
        P: crate::batch::BatchActivation + ?Sized,
        R: RngCore + Clone,
        Pr: Probe,
    {
        use crate::batch::{resolve_plan, ResolvedPlan, TickPlan, WavePartitioner};
        use rayon::prelude::*;

        if protocol.clocking() == Clocking::SelfPaced {
            return self.run_with(protocol, stop, rng, probe);
        }
        let mut stride = protocol
            .trace_interval()
            .unwrap_or(self.sample_every)
            .max(1);
        let mut clock = BatchedPoissonClock::new(self.n);
        let mut ticks: u64 = 0;
        let mut tx = TransmissionCounter::new();
        let mut trace = ConvergenceTrace::new();
        trace.push(TracePoint {
            transmissions: 0,
            ticks: 0,
            relative_error: protocol.relative_error(),
        });
        let threshold_hi = protocol.squared_error().map(|sq| {
            let target = stop.epsilon * sq.initial;
            (target * target) * SQ_THRESHOLD_SLACK
        });

        let batch_cap = par.batch.max(1);
        let mut partitioner = WavePartitioner::new(protocol.network());
        let mut planned: Vec<(Tick, TickPlan)> = Vec::with_capacity(batch_cap);

        let reason = 'outer: loop {
            // Pre-tick stop check for the first tick of the batch; ticks
            // after it are checked inside the commit loop, so every tick sees
            // the exact per-tick check order of the sequential engine.
            if let Some(reason) = check_stop(protocol, &stop, threshold_hi, ticks, &tx) {
                if probe.enabled() && reason == StopReason::Converged {
                    probe.on_event(Event::ConvergenceCrossed {
                        tick: ticks,
                        transmissions: tx.total(),
                        relative_error: protocol.relative_error(),
                    });
                }
                break 'outer reason;
            }

            // Snapshot the randomness so a mid-batch stop can rewind: the
            // batched clock clones its pending gap buffer, so replaying the
            // committed ticks reproduces the identical reduction schedule.
            let rng_snapshot = rng.clone();
            let clock_snapshot = clock.clone();

            // Stage 1 (sequential): draw the batch's randomness in exactly
            // the order the sequential loop draws it — clock gap + node, then
            // the protocol's own draws, per tick. Capping the batch at the
            // remaining tick budget is an optimisation only; the rewind
            // below stays the general fallback.
            let remaining = stop
                .max_ticks
                .map_or(u64::MAX, |m| m.saturating_sub(ticks))
                .max(1);
            let batch = (batch_cap as u64).min(remaining) as usize;
            planned.clear();
            for _ in 0..batch {
                let tick = clock.next_tick(&mut *rng);
                let mut reborrow = &mut *rng;
                let plan = protocol.draw_plan(tick, &mut reborrow);
                planned.push((tick, plan));
            }

            // Conflict partition: contiguous waves with provably disjoint
            // footprints (a proof structure — commits below still replay in
            // draw order; see the batch module docs).
            let waves = partitioner.partition(protocol.network(), &planned);

            // Stage 2 (concurrent): resolve the whole batch's routing. Route
            // walks are pure functions of the static graph — value- and
            // order-independent — so they need no wave gating, and the
            // order-preserving parallel map keeps results bit-identical for
            // every thread count. Batches with no routed work skip the pool.
            let graph = protocol.network();
            let needs_routing = planned.iter().any(|(_, p)| {
                matches!(
                    p,
                    TickPlan::RoutePosition { .. } | TickPlan::RouteNode { .. }
                )
            });
            let resolved: Vec<ResolvedPlan> = if needs_routing {
                let plans = &planned;
                rayon::with_max_threads(par.threads, || {
                    (0..plans.len())
                        .into_par_iter()
                        .map(|i| resolve_plan(graph, plans[i].0.node, &plans[i].1))
                        .collect()
                })
            } else {
                planned
                    .iter()
                    .map(|(tick, plan)| resolve_plan(graph, tick.node, plan))
                    .collect()
            };

            // Stage 3 (sequential): commit wave by wave in draw order — the
            // batch draw-order contract — with the sequential engine's exact
            // pre-tick stop check ahead of every tick after the first.
            let mut committed = 0usize;
            let mut stop_reason = None;
            'commit: for wave in waves {
                for i in wave {
                    if i > 0 {
                        if let Some(reason) = check_stop(protocol, &stop, threshold_hi, ticks, &tx)
                        {
                            if probe.enabled() && reason == StopReason::Converged {
                                probe.on_event(Event::ConvergenceCrossed {
                                    tick: ticks,
                                    transmissions: tx.total(),
                                    relative_error: protocol.relative_error(),
                                });
                            }
                            stop_reason = Some(reason);
                            break 'commit;
                        }
                    }
                    let (tick, _) = planned[i];
                    protocol.commit_plan(tick, &resolved[i], &mut tx);
                    ticks = tick.index;
                    committed += 1;
                    if probe.enabled() {
                        // Same position and content as the sequential loop's
                        // post-`on_tick` emission: committed ticks replay in
                        // draw order, so the stream matches `run_probed`'s
                        // byte for byte at every thread count.
                        probe.on_event(Event::TickCommitted {
                            tick: tick.index,
                            node: tick.node.index() as u32,
                            sim_time: tick.time,
                            transmissions: tx.total(),
                        });
                    }
                    if tick.index.is_multiple_of(stride) {
                        while trace.len() >= self.max_trace_points {
                            stride = stride.saturating_mul(2);
                            trace.thin_to_stride(stride);
                        }
                        if tick.index.is_multiple_of(stride) {
                            trace.push(TracePoint {
                                transmissions: tx.total(),
                                ticks: tick.index,
                                relative_error: protocol.relative_error(),
                            });
                        }
                    }
                }
            }

            if let Some(reason) = stop_reason {
                // The batch over-drew the RNG: rewind to the batch start and
                // redraw exactly the committed ticks (plans discarded — the
                // draws are what matters), leaving generator and clock in the
                // states the sequential engine would leave them in.
                *rng = rng_snapshot;
                clock = clock_snapshot;
                for _ in 0..committed {
                    let tick = clock.next_tick(&mut *rng);
                    let mut reborrow = &mut *rng;
                    let _ = protocol.draw_plan(tick, &mut reborrow);
                }
                break 'outer reason;
            }
        };

        trace.push(TracePoint {
            transmissions: tx.total(),
            ticks,
            relative_error: protocol.relative_error(),
        });
        EngineReport {
            reason,
            transmissions: tx,
            ticks,
            time: clock.now(),
            final_error: protocol.relative_error(),
            trace,
        }
    }

    /// The pre-overhaul tick loop, preserved **verbatim** (sequential
    /// [`GlobalPoissonClock`], exact `relative_error` comparison every tick,
    /// unbounded trace) for the engine parity property tests and the
    /// `bench_baseline --append-tick-large` comparison — the same
    /// keep-the-reference discipline as `GeometricGraph::build_reference` and
    /// `geogossip_bench::legacy`.
    ///
    /// Production callers should use [`AsyncEngine::run`]; the two are
    /// bit-identical (reports and RNG consumption) whenever the trace stays
    /// under the cap, which the parity suite pins.
    pub fn run_reference<P, R>(
        &mut self,
        protocol: &mut P,
        stop: StopCondition,
        rng: &mut R,
    ) -> EngineReport
    where
        P: Activation + ?Sized,
        R: RngCore + ?Sized,
    {
        let mut clock = GlobalPoissonClock::new(self.n);
        clock.reset();
        let self_paced = protocol.clocking() == Clocking::SelfPaced;
        let sample_every = protocol
            .trace_interval()
            .unwrap_or(self.sample_every)
            .max(1);
        let mut ticks: u64 = 0;
        let mut tx = TransmissionCounter::new();
        let mut trace = ConvergenceTrace::new();
        trace.push(TracePoint {
            transmissions: 0,
            ticks: 0,
            relative_error: protocol.relative_error(),
        });

        // The convergence predicate is evaluated after every tick:
        // `relative_error` is O(1) for GossipState-backed protocols (the
        // centered norm is maintained incrementally), so runs stop exactly at
        // the crossing tick instead of overshooting by up to a full sampling
        // interval as the pre-incremental implementation did. The trace is
        // still sampled at the configured interval to keep reports compact.
        let reason = loop {
            if protocol.relative_error() <= stop.epsilon {
                break StopReason::Converged;
            }
            if protocol.halted() {
                break StopReason::ProtocolStalled;
            }
            if stop.max_ticks.is_some_and(|m| ticks >= m) {
                break StopReason::TickBudgetExhausted;
            }
            if stop.max_transmissions.is_some_and(|m| tx.total() >= m) {
                break StopReason::TransmissionBudgetExhausted;
            }
            let tick = if self_paced {
                ticks += 1;
                Tick {
                    time: ticks as f64,
                    index: ticks,
                    node: NodeId(0),
                }
            } else {
                let tick = clock.next_tick(&mut *rng);
                ticks = tick.index;
                tick
            };
            // `&mut &mut R` coerces to `&mut dyn RngCore` via the blanket
            // `RngCore for &mut R` impl, without requiring `R: Sized`.
            let mut reborrow = &mut *rng;
            protocol.on_tick(tick, &mut tx, &mut reborrow);
            if tick.index.is_multiple_of(sample_every) {
                trace.push(TracePoint {
                    transmissions: tx.total(),
                    ticks: tick.index,
                    relative_error: protocol.relative_error(),
                });
            }
        };

        trace.push(TracePoint {
            transmissions: tx.total(),
            ticks,
            relative_error: protocol.relative_error(),
        });
        EngineReport {
            reason,
            transmissions: tx,
            ticks,
            time: if self_paced {
                ticks as f64
            } else {
                clock.now()
            },
            final_error: protocol.relative_error(),
            trace,
        }
    }
}

/// The per-tick stop check of the overhauled loop, factored for the parallel
/// path: squared-domain pre-filter, exact confirmation, then halt/budget
/// checks, in exactly the order [`AsyncEngine::run`] evaluates them.
fn check_stop<P: Activation + ?Sized>(
    protocol: &P,
    stop: &StopCondition,
    threshold_hi: Option<f64>,
    ticks: u64,
    tx: &TransmissionCounter,
) -> Option<StopReason> {
    let clearly_above = match (threshold_hi, protocol.squared_error()) {
        (Some(hi), Some(sq)) => sq.current_sq > hi,
        _ => false,
    };
    if !clearly_above && protocol.relative_error() <= stop.epsilon {
        return Some(StopReason::Converged);
    }
    if protocol.halted() {
        return Some(StopReason::ProtocolStalled);
    }
    if stop.max_ticks.is_some_and(|m| ticks >= m) {
        return Some(StopReason::TickBudgetExhausted);
    }
    if stop.max_transmissions.is_some_and(|m| tx.total() >= m) {
        return Some(StopReason::TransmissionBudgetExhausted);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A toy protocol whose error halves every `n` ticks and which charges one
    /// local transmission per tick.
    struct Halver {
        n: u64,
        error: f64,
    }

    impl Activation for Halver {
        fn on_tick(&mut self, tick: Tick, tx: &mut TransmissionCounter, _rng: &mut dyn RngCore) {
            tx.charge_local(1);
            if tick.index.is_multiple_of(self.n) {
                self.error /= 2.0;
            }
        }
        fn relative_error(&self) -> f64 {
            self.error
        }
    }

    #[test]
    fn engine_converges_and_reports() {
        let mut engine = AsyncEngine::new(10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut proto = Halver { n: 10, error: 1.0 };
        let report = engine.run(&mut proto, StopCondition::at_epsilon(1e-3), &mut rng);
        assert!(report.converged());
        assert!(report.final_error <= 1e-3);
        assert_eq!(report.transmissions.total(), report.ticks);
        assert!(report.trace.len() >= 2);
        assert!(report.time > 0.0);
    }

    #[test]
    fn tick_budget_stops_nonconverging_runs() {
        struct Stuck;
        impl Activation for Stuck {
            fn on_tick(&mut self, _t: Tick, tx: &mut TransmissionCounter, _r: &mut dyn RngCore) {
                tx.charge_local(1);
            }
            fn relative_error(&self) -> f64 {
                1.0
            }
        }
        let mut engine = AsyncEngine::new(5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let stop = StopCondition::at_epsilon(1e-9).with_max_ticks(100);
        let report = engine.run(&mut Stuck, stop, &mut rng);
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        assert_eq!(report.ticks, 100);
    }

    #[test]
    fn transmission_budget_stops_runs() {
        struct Chatty;
        impl Activation for Chatty {
            fn on_tick(&mut self, _t: Tick, tx: &mut TransmissionCounter, _r: &mut dyn RngCore) {
                tx.charge_routing(50);
            }
            fn relative_error(&self) -> f64 {
                1.0
            }
        }
        let mut engine = AsyncEngine::new(5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let stop = StopCondition::at_epsilon(1e-9).with_max_transmissions(200);
        let report = engine.run(&mut Chatty, stop, &mut rng);
        assert_eq!(report.reason, StopReason::TransmissionBudgetExhausted);
        assert!(report.transmissions.total() >= 200);
    }

    #[test]
    fn already_converged_protocol_uses_no_ticks() {
        let mut engine = AsyncEngine::new(5);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut proto = Halver { n: 1, error: 0.0 };
        let report = engine.run(&mut proto, StopCondition::at_epsilon(0.5), &mut rng);
        assert!(report.converged());
        assert_eq!(report.ticks, 0);
        assert_eq!(report.transmissions.total(), 0);
    }

    #[test]
    fn trace_is_sampled_at_requested_interval() {
        let mut engine = AsyncEngine::new(10).sample_every(7);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut proto = Halver { n: 20, error: 1.0 };
        let report = engine.run(
            &mut proto,
            StopCondition::at_epsilon(0.1).with_max_ticks(100),
            &mut rng,
        );
        // Initial + one per 7 ticks + final.
        assert!(report.trace.len() >= 3);
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_sampling_interval_rejected() {
        let _ = AsyncEngine::new(3).sample_every(0);
    }

    /// A self-paced protocol that records the node ids it was handed and
    /// halts itself after a fixed number of rounds.
    struct SelfPacedCounter {
        rounds: u64,
        cap: u64,
        draws: Vec<u64>,
    }

    impl Activation for SelfPacedCounter {
        fn on_tick(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
            assert_eq!(tick.node, NodeId(0));
            assert_eq!(tick.index, self.rounds + 1);
            self.draws.push(rng.next_u64());
            tx.charge_control(1);
            self.rounds += 1;
            if self.rounds >= self.cap {
                // The halt is observed by the engine before the next tick.
            }
        }
        fn relative_error(&self) -> f64 {
            1.0
        }
        fn rounds(&self) -> Option<u64> {
            Some(self.rounds)
        }
        fn halted(&self) -> bool {
            self.rounds >= self.cap
        }
        fn clocking(&self) -> Clocking {
            Clocking::SelfPaced
        }
        fn trace_interval(&self) -> Option<u64> {
            Some(1)
        }
    }

    #[test]
    fn self_paced_protocols_get_sequential_ticks_and_all_the_randomness() {
        let mut engine = AsyncEngine::new(7);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut proto = SelfPacedCounter {
            rounds: 0,
            cap: 5,
            draws: Vec::new(),
        };
        let report = engine.run(&mut proto, StopCondition::at_epsilon(1e-6), &mut rng);
        assert_eq!(report.reason, StopReason::ProtocolStalled);
        assert_eq!(report.ticks, 5);
        assert_eq!(proto.rounds, 5);
        // The clock consumed nothing: the protocol's draws equal the first
        // five raw outputs of an identically seeded generator.
        let mut reference = ChaCha8Rng::seed_from_u64(6);
        let expected: Vec<u64> = (0..5)
            .map(|_| rand::RngCore::next_u64(&mut reference))
            .collect();
        assert_eq!(proto.draws, expected);
    }

    #[test]
    fn protocol_trace_interval_overrides_engine_sampling() {
        // The engine is sized for a large network (default sampling every
        // 1000 ticks), but the protocol asks for per-tick samples; without
        // the override a 5-round run would collapse to its endpoints.
        let mut engine = AsyncEngine::new(1000);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut proto = SelfPacedCounter {
            rounds: 0,
            cap: 5,
            draws: Vec::new(),
        };
        let report = engine.run(&mut proto, StopCondition::at_epsilon(1e-6), &mut rng);
        // Initial point + one per round + final.
        assert_eq!(report.trace.len(), 7);
    }

    /// A protocol that never converges, for driving the loop a fixed number
    /// of ticks.
    struct Stuck;
    impl Activation for Stuck {
        fn on_tick(&mut self, _t: Tick, tx: &mut TransmissionCounter, _r: &mut dyn RngCore) {
            tx.charge_local(1);
        }
        fn relative_error(&self) -> f64 {
            1.0
        }
    }

    /// The trace cap doubles the stride and thins in place, so the sampled
    /// ticks are exactly the multiples of the final stride (satellite pin:
    /// a long run cannot accumulate unbounded `TracePoint`s).
    #[test]
    fn trace_cap_doubles_stride_and_pins_sampled_ticks() {
        let mut engine = AsyncEngine::new(5).sample_every(1).max_trace_points(5);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let stop = StopCondition::at_epsilon(1e-9).with_max_ticks(40);
        let report = engine.run(&mut Stuck, stop, &mut rng);
        let ticks: Vec<u64> = report.trace.points().iter().map(|p| p.ticks).collect();
        // Per-tick sampling under cap 5 over 40 ticks settles at stride 16
        // ({0, 16, 32}); the final sample (tick 40) is appended on top.
        assert_eq!(ticks, vec![0, 16, 32, 40]);
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
    }

    #[test]
    fn trace_cap_bounds_million_tick_runs() {
        let mut engine = AsyncEngine::new(3).sample_every(1);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let stop = StopCondition::at_epsilon(1e-9).with_max_ticks(1_000_000);
        let report = engine.run(&mut Stuck, stop, &mut rng);
        assert_eq!(report.ticks, 1_000_000);
        // Initial + interior capped at DEFAULT_MAX_TRACE_POINTS + final.
        assert!(report.trace.len() <= DEFAULT_MAX_TRACE_POINTS + 1);
        assert!(report.trace.len() > DEFAULT_MAX_TRACE_POINTS / 4);
    }

    #[test]
    #[should_panic(expected = "trace cap")]
    fn tiny_trace_cap_rejected() {
        let _ = AsyncEngine::new(3).max_trace_points(1);
    }

    /// A protocol exposing the squared-domain stop hook; its error halves on
    /// every tick that is a multiple of `n`.
    struct SqHalver {
        n: u64,
        error: f64,
    }

    impl Activation for SqHalver {
        fn on_tick(&mut self, tick: Tick, tx: &mut TransmissionCounter, _rng: &mut dyn RngCore) {
            tx.charge_local(1);
            if tick.index.is_multiple_of(self.n) {
                self.error /= 2.0;
            }
        }
        fn relative_error(&self) -> f64 {
            self.error
        }
        fn squared_error(&self) -> Option<SquaredError> {
            Some(SquaredError {
                current_sq: self.error * self.error,
                initial: 1.0,
            })
        }
    }

    /// The squared-domain pre-filter must stop at exactly the tick the exact
    /// per-tick comparison stops at.
    #[test]
    fn squared_stop_filter_matches_reference_stopping_tick() {
        for epsilon in [0.5, 0.1, 1e-3, 1e-6] {
            let stop = StopCondition::at_epsilon(epsilon);
            let mut fast = AsyncEngine::new(10);
            let report_fast = fast.run(
                &mut SqHalver { n: 7, error: 1.0 },
                stop,
                &mut ChaCha8Rng::seed_from_u64(11),
            );
            let mut reference = AsyncEngine::new(10);
            let report_reference = reference.run_reference(
                &mut SqHalver { n: 7, error: 1.0 },
                stop,
                &mut ChaCha8Rng::seed_from_u64(11),
            );
            assert_eq!(report_fast, report_reference);
            assert!(report_fast.converged());
        }
    }

    #[test]
    fn engine_drives_boxed_dyn_protocols() {
        let mut engine = AsyncEngine::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut boxed: Box<dyn Activation> = Box::new(Halver { n: 4, error: 1.0 });
        let report = engine.run(&mut *boxed, StopCondition::at_epsilon(0.1), &mut rng);
        assert!(report.converged());
    }

    #[test]
    fn stop_condition_validation_rejects_bad_epsilon() {
        assert!(StopCondition::at_epsilon(0.1).validate().is_ok());
        assert!(StopCondition::at_epsilon(0.0).validate().is_err());
        assert!(StopCondition::at_epsilon(-1.0).validate().is_err());
        assert!(StopCondition::at_epsilon(f64::NAN).validate().is_err());
        assert!(StopCondition::at_epsilon(f64::INFINITY).validate().is_err());
    }
}
