//! A minimal asynchronous simulation driver.
//!
//! The engine owns the global Poisson clock and the metrics; a protocol is any
//! closure (or [`Activation`] implementor) that reacts to "the clock of sensor
//! `v` ticked" by mutating its own state and charging transmissions. The
//! engine stops when a caller-supplied [`StopCondition`] is met, and returns a
//! compact [`EngineReport`].
//!
//! Keeping the engine this small is deliberate: the paper's protocols differ
//! only in what happens on a tick, so the engine is the single place where the
//! time model and the stopping logic live.

use crate::clock::{GlobalPoissonClock, Tick};
use crate::metrics::{ConvergenceTrace, TracePoint, TransmissionCounter};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A protocol that can be driven by the engine: it reacts to a clock tick by
/// updating its state, charging transmissions, and reporting its current
/// relative error.
pub trait Activation {
    /// Handles the tick of `tick.node`, charging any transmissions to `tx` and
    /// using `rng` for the protocol's own randomness.
    fn on_tick<R: Rng + ?Sized>(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut R);

    /// Current relative ℓ₂ error `‖x − x̄·1‖ / ‖x(0) − x̄·1‖`.
    ///
    /// The engine calls this after **every** tick to decide whether to stop,
    /// so implementations must make it cheap — `O(1)` amortised. Protocols
    /// backed by `GossipState` get this for free from its incremental
    /// centered-norm tracking.
    fn relative_error(&self) -> f64;
}

/// When the engine should stop driving a protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopCondition {
    /// Stop once the relative error is at or below this value.
    pub epsilon: f64,
    /// Hard cap on the number of clock ticks (safety net for non-converging
    /// configurations); `None` means no cap.
    pub max_ticks: Option<u64>,
    /// Hard cap on the number of transmissions; `None` means no cap.
    pub max_transmissions: Option<u64>,
}

impl StopCondition {
    /// Stop at relative error `epsilon`, with generous default caps
    /// (`10^9` transmissions, `10^8` ticks) so runaway runs terminate.
    pub fn at_epsilon(epsilon: f64) -> Self {
        StopCondition {
            epsilon,
            max_ticks: Some(100_000_000),
            max_transmissions: Some(1_000_000_000),
        }
    }

    /// Replaces the tick cap.
    pub fn with_max_ticks(mut self, max: u64) -> Self {
        self.max_ticks = Some(max);
        self
    }

    /// Replaces the transmission cap.
    pub fn with_max_transmissions(mut self, max: u64) -> Self {
        self.max_transmissions = Some(max);
        self
    }
}

/// Why the engine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The error target was reached.
    Converged,
    /// The tick cap was hit first.
    TickBudgetExhausted,
    /// The transmission cap was hit first.
    TransmissionBudgetExhausted,
}

/// Summary of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Final transmission counters.
    pub transmissions: TransmissionCounter,
    /// Number of global clock ticks consumed.
    pub ticks: u64,
    /// Simulation time at the end of the run.
    pub time: f64,
    /// Final relative error.
    pub final_error: f64,
    /// Error-vs-cost trace sampled every `sample_every` ticks.
    pub trace: ConvergenceTrace,
}

impl EngineReport {
    /// Whether the run reached its error target.
    pub fn converged(&self) -> bool {
        self.reason == StopReason::Converged
    }
}

/// The asynchronous engine: a Poisson clock plus bookkeeping.
#[derive(Debug, Clone)]
pub struct AsyncEngine {
    clock: GlobalPoissonClock,
    sample_every: u64,
}

impl AsyncEngine {
    /// Creates an engine for a network of `n` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        AsyncEngine {
            clock: GlobalPoissonClock::new(n),
            sample_every: (n as u64).max(1),
        }
    }

    /// Sets how many ticks elapse between consecutive trace samples
    /// (default: one sample per `n` ticks ≈ one per unit of simulated time).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn sample_every(mut self, every: u64) -> Self {
        assert!(every > 0, "sampling interval must be positive");
        self.sample_every = every;
        self
    }

    /// Drives `protocol` until `stop` is satisfied, returning the run report.
    pub fn run<P, R>(&mut self, protocol: &mut P, stop: StopCondition, rng: &mut R) -> EngineReport
    where
        P: Activation,
        R: Rng + ?Sized,
    {
        self.clock.reset();
        let mut tx = TransmissionCounter::new();
        let mut trace = ConvergenceTrace::new();
        trace.push(TracePoint {
            transmissions: 0,
            ticks: 0,
            relative_error: protocol.relative_error(),
        });

        // The convergence predicate is evaluated after every tick:
        // `relative_error` is O(1) for GossipState-backed protocols (the
        // centered norm is maintained incrementally), so runs stop exactly at
        // the crossing tick instead of overshooting by up to a full sampling
        // interval as the pre-incremental implementation did. The trace is
        // still sampled at the configured interval to keep reports compact.
        let reason = loop {
            if protocol.relative_error() <= stop.epsilon {
                break StopReason::Converged;
            }
            if stop.max_ticks.is_some_and(|m| self.clock.ticks() >= m) {
                break StopReason::TickBudgetExhausted;
            }
            if stop.max_transmissions.is_some_and(|m| tx.total() >= m) {
                break StopReason::TransmissionBudgetExhausted;
            }
            let tick = self.clock.next_tick(rng);
            protocol.on_tick(tick, &mut tx, rng);
            if tick.index.is_multiple_of(self.sample_every) {
                trace.push(TracePoint {
                    transmissions: tx.total(),
                    ticks: tick.index,
                    relative_error: protocol.relative_error(),
                });
            }
        };

        trace.push(TracePoint {
            transmissions: tx.total(),
            ticks: self.clock.ticks(),
            relative_error: protocol.relative_error(),
        });
        EngineReport {
            reason,
            transmissions: tx,
            ticks: self.clock.ticks(),
            time: self.clock.now(),
            final_error: protocol.relative_error(),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A toy protocol whose error halves every `n` ticks and which charges one
    /// local transmission per tick.
    struct Halver {
        n: u64,
        error: f64,
    }

    impl Activation for Halver {
        fn on_tick<R: Rng + ?Sized>(
            &mut self,
            tick: Tick,
            tx: &mut TransmissionCounter,
            _rng: &mut R,
        ) {
            tx.charge_local(1);
            if tick.index.is_multiple_of(self.n) {
                self.error /= 2.0;
            }
        }
        fn relative_error(&self) -> f64 {
            self.error
        }
    }

    #[test]
    fn engine_converges_and_reports() {
        let mut engine = AsyncEngine::new(10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut proto = Halver { n: 10, error: 1.0 };
        let report = engine.run(&mut proto, StopCondition::at_epsilon(1e-3), &mut rng);
        assert!(report.converged());
        assert!(report.final_error <= 1e-3);
        assert_eq!(report.transmissions.total(), report.ticks);
        assert!(report.trace.len() >= 2);
        assert!(report.time > 0.0);
    }

    #[test]
    fn tick_budget_stops_nonconverging_runs() {
        struct Stuck;
        impl Activation for Stuck {
            fn on_tick<R: Rng + ?Sized>(
                &mut self,
                _t: Tick,
                tx: &mut TransmissionCounter,
                _r: &mut R,
            ) {
                tx.charge_local(1);
            }
            fn relative_error(&self) -> f64 {
                1.0
            }
        }
        let mut engine = AsyncEngine::new(5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let stop = StopCondition::at_epsilon(1e-9).with_max_ticks(100);
        let report = engine.run(&mut Stuck, stop, &mut rng);
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        assert_eq!(report.ticks, 100);
    }

    #[test]
    fn transmission_budget_stops_runs() {
        struct Chatty;
        impl Activation for Chatty {
            fn on_tick<R: Rng + ?Sized>(
                &mut self,
                _t: Tick,
                tx: &mut TransmissionCounter,
                _r: &mut R,
            ) {
                tx.charge_routing(50);
            }
            fn relative_error(&self) -> f64 {
                1.0
            }
        }
        let mut engine = AsyncEngine::new(5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let stop = StopCondition::at_epsilon(1e-9).with_max_transmissions(200);
        let report = engine.run(&mut Chatty, stop, &mut rng);
        assert_eq!(report.reason, StopReason::TransmissionBudgetExhausted);
        assert!(report.transmissions.total() >= 200);
    }

    #[test]
    fn already_converged_protocol_uses_no_ticks() {
        let mut engine = AsyncEngine::new(5);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut proto = Halver { n: 1, error: 0.0 };
        let report = engine.run(&mut proto, StopCondition::at_epsilon(0.5), &mut rng);
        assert!(report.converged());
        assert_eq!(report.ticks, 0);
        assert_eq!(report.transmissions.total(), 0);
    }

    #[test]
    fn trace_is_sampled_at_requested_interval() {
        let mut engine = AsyncEngine::new(10).sample_every(7);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut proto = Halver { n: 20, error: 1.0 };
        let report = engine.run(
            &mut proto,
            StopCondition::at_epsilon(0.1).with_max_ticks(100),
            &mut rng,
        );
        // Initial + one per 7 ticks + final.
        assert!(report.trace.len() >= 3);
    }

    #[test]
    #[should_panic(expected = "sampling interval")]
    fn zero_sampling_interval_rejected() {
        let _ = AsyncEngine::new(3).sample_every(0);
    }
}
