//! Conflict-partitioned tick batching: the engine's intra-trial parallel path.
//!
//! The Poisson tick stream of the paper's gossip protocols has a structural
//! property this module exploits: **every random decision of a tick is
//! value-independent**. Which sensor wakes, which neighbor or target position
//! it draws, and where greedy routing delivers the packet depend only on the
//! static graph and the RNG stream — never on the gossip values. Only the
//! *averaging* (and the stop condition watching it) reads mutable state. A
//! batch of ticks can therefore be
//!
//! 1. **drawn** sequentially (cheap: a handful of RNG draws per tick, in
//!    exactly the order the sequential engine draws them),
//! 2. **resolved** concurrently (the expensive greedy route walks — pure
//!    functions of the static graph, parallelised over the whole batch with
//!    an order-preserving map), and
//! 3. **committed** sequentially in draw order (required bit-for-bit: the
//!    gossip state's incremental `Σ(x−x̄)²` cache folds non-associative
//!    floating-point deltas, so commits must replay in the exact order the
//!    sequential engine applies them — the *batch draw-order contract*).
//!
//! On top of this, a [`WavePartitioner`] groups consecutive ticks into
//! **conflict-free waves** by footprint disjointness: the footprint of a tick
//! conservatively over-approximates every sensor its round may read, write,
//! or relay through (exact partner pairs for pairwise gossip; grid-cell route
//! corridors for geographic gossip — the disk around the target of radius
//! `d(s, t)` contains every greedy hop, and the disk around the caller of
//! radius `2·d(s, t)` contains the return path, by the triangle inequality).
//! Within a wave the write-sets are provably disjoint, so each tick's average
//! reads exactly the wave-start values no matter how the wave's commits are
//! interleaved — which is what makes the batch-wide concurrent resolution
//! sound to *overlap* with earlier waves' effects conceptually, and what a
//! conflicting tick (a singleton wave, the *sequential replay residue*)
//! cannot guarantee. The engine walks waves in order and commits each tick in
//! draw order either way, so the partition is a proof structure, not a
//! scheduling freedom: reports, traces, metrics, and RNG end state stay
//! bit-identical to [`crate::engine::AsyncEngine::run`].

use crate::clock::Tick;
use crate::engine::Activation;
use crate::error::ProtocolError;
use crate::metrics::TransmissionCounter;
use geogossip_geometry::point::NodeId;
use geogossip_geometry::{Point, Topology};
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::{route_terminus, route_terminus_to_node};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Default number of ticks pre-drawn per batch by the parallel engine path.
pub const DEFAULT_TICK_BATCH: usize = 1024;

/// Worker threads of the global pool — what a `threads: 0`-style "auto"
/// setting should resolve to (honours `RAYON_NUM_THREADS`).
pub fn available_threads() -> usize {
    rayon::current_num_threads()
}

/// Intra-trial parallelism settings: how many threads may work on one trial
/// and how many ticks the engine pre-draws per batch.
///
/// Carried by the optional `parallelism` key of a scenario spec; when the key
/// is absent the sequential path runs and no partitioner is ever constructed
/// (the no-key-no-wrapper convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelSpec {
    /// Maximum worker threads for one trial's tick loop (≥ 1; 1 keeps the
    /// batched structure but resolves inline on the calling thread).
    pub threads: usize,
    /// Ticks pre-drawn per batch (≥ 1). Larger batches amortise the
    /// snapshot/partition overhead; smaller ones waste fewer pre-drawn ticks
    /// when a run stops mid-batch. Defaults to [`DEFAULT_TICK_BATCH`].
    pub batch: usize,
}

impl ParallelSpec {
    /// Settings with the given thread cap and the default batch size.
    pub fn with_threads(threads: usize) -> Self {
        ParallelSpec {
            threads,
            batch: DEFAULT_TICK_BATCH,
        }
    }

    /// Replaces the batch size (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Checks both knobs are usable (strictly positive).
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.threads == 0 {
            return Err(ProtocolError::invalid(
                "parallelism.threads",
                "thread count must be at least 1",
            ));
        }
        if self.batch == 0 {
            return Err(ProtocolError::invalid(
                "parallelism.batch",
                "tick batch size must be at least 1",
            ));
        }
        Ok(())
    }
}

/// The value-independent decisions of one tick, drawn sequentially from the
/// run RNG with **exactly** the draws the protocol's `on_tick` would consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TickPlan {
    /// The tick has no effect on values or transmissions.
    Skip {
        /// Whether the activated sensor was isolated (pairwise gossip counts
        /// these activations; geographic sub-2-node no-ops do not).
        isolated: bool,
    },
    /// Pairwise exchange with a neighbor already known at draw time.
    Pair {
        /// The drawn neighbor.
        partner: NodeId,
    },
    /// Geographic round towards a uniformly drawn position; the partner is
    /// whoever greedy routing stops at (resolved later, off the RNG stream).
    RoutePosition {
        /// The drawn target position.
        target: Point,
    },
    /// Geographic round towards a selector-drawn node.
    RouteNode {
        /// The drawn destination node.
        target: NodeId,
    },
}

/// A [`TickPlan`] with its heavy, value-independent work done: greedy routes
/// walked, partner and hop counts known. Producing one reads only the static
/// graph, so a whole batch resolves concurrently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResolvedPlan {
    /// No state effect (see [`TickPlan::Skip`]).
    Skip {
        /// Forwarded isolation flag.
        isolated: bool,
    },
    /// Pairwise exchange (nothing to resolve).
    Pair {
        /// The drawn neighbor.
        partner: NodeId,
    },
    /// A routed geographic round.
    Route {
        /// The exchange partner (the outbound route's terminus).
        partner: NodeId,
        /// Hops of the outbound route.
        outbound_hops: usize,
        /// Whether the outbound route dead-ended short of a selector-drawn
        /// destination (counted as a failed route *before* the
        /// partner-is-self check, matching the sequential step exactly).
        outbound_failed: bool,
        /// Return route `(hops, delivered)`; `None` when the partner is the
        /// caller itself (a free no-op round — no packet leaves the caller).
        back: Option<(usize, bool)>,
    },
}

/// A protocol whose ticks can be split into a sequential RNG-draw stage and a
/// concurrent resolution stage (see the module docs for the contract).
///
/// Implementations must guarantee, for every tick:
///
/// * [`BatchActivation::draw_plan`] consumes **exactly** the RNG draws
///   [`Activation::on_tick`] would, in the same order, and
/// * [`BatchActivation::commit_plan`] applied to the resolved plan reproduces
///   `on_tick`'s state mutations, transmission charges, and metric counters
///   **exactly**, including the order of error-cache updates.
pub trait BatchActivation: Activation {
    /// The static network the protocol runs on (the footprint geometry and
    /// route resolution source).
    fn network(&self) -> &GeometricGraph;

    /// Draws the tick's value-independent decisions from `rng`.
    fn draw_plan(&self, tick: Tick, rng: &mut dyn RngCore) -> TickPlan;

    /// Applies a resolved tick to the protocol state, bit-identically to what
    /// [`Activation::on_tick`] would have done for the same draws.
    fn commit_plan(&mut self, tick: Tick, resolved: &ResolvedPlan, tx: &mut TransmissionCounter);
}

/// Resolves a plan's heavy work: pure in the static graph, no RNG, no state.
pub fn resolve_plan(graph: &GeometricGraph, source: NodeId, plan: &TickPlan) -> ResolvedPlan {
    match *plan {
        TickPlan::Skip { isolated } => ResolvedPlan::Skip { isolated },
        TickPlan::Pair { partner } => ResolvedPlan::Pair { partner },
        TickPlan::RoutePosition { target } => {
            let outcome = route_terminus(graph, source, target);
            finish_route(graph, source, outcome.terminus, outcome.hops, false)
        }
        TickPlan::RouteNode { target } => {
            let (outcome, delivered) = route_terminus_to_node(graph, source, target);
            finish_route(graph, source, outcome.terminus, outcome.hops, !delivered)
        }
    }
}

fn finish_route(
    graph: &GeometricGraph,
    source: NodeId,
    partner: NodeId,
    outbound_hops: usize,
    outbound_failed: bool,
) -> ResolvedPlan {
    let back = if partner == source {
        None
    } else {
        let (route, delivered) = route_terminus_to_node(graph, partner, source);
        Some((route.hops, delivered))
    };
    ResolvedPlan::Route {
        partner,
        outbound_hops,
        outbound_failed,
        back,
    }
}

/// Side length (in cells) of the coarse occupancy grid footprints are stamped
/// onto. 32×32 = 1024 cells fit in sixteen `u64` words, so clearing and
/// intersection tests are a handful of word operations.
const COARSE: usize = 32;
const CELL_WORDS: usize = COARSE * COARSE / 64;

/// One axis of a disk's bounding box on the coarse grid: a wrapped cell
/// interval, or `None` when the disk covers the whole axis.
type AxisSpan = Option<(usize, usize)>;

/// The conservatively over-approximated read/write/relay set of one tick.
enum Footprint {
    /// No sensors touched.
    Empty,
    /// Exactly the two endpoints of a pairwise exchange.
    Nodes(NodeId, NodeId),
    /// Grid cells covering the round's route corridors: the disk of radius
    /// `d(s, t)` around the target `t` (every greedy hop is strictly closer
    /// to `t` than the caller `s`, so the whole outbound route and the
    /// partner lie inside) united with the disk of radius `2·d(s, t)` around
    /// `s` (the return route, by the triangle inequality). Covers relays,
    /// not just endpoints, so the rule stays valid if relay-local state is
    /// ever added.
    Cells([(AxisSpan, AxisSpan); 2]),
    /// The corridors cover most of the square; conflicts with everything.
    Full,
}

/// Groups consecutive planned ticks into conflict-free waves.
///
/// Constructed only when a scenario opts into parallelism (the sequential
/// path never builds one). Scratch bitsets are reused across batches.
pub struct WavePartitioner {
    topology: Topology,
    /// One bit per sensor, for exact pairwise footprints.
    node_words: Vec<u64>,
    touched_node_words: Vec<usize>,
    /// One bit per coarse grid cell, for geographic corridor footprints.
    cell_words: [u64; CELL_WORDS],
    nodes_used: bool,
    cells_used: bool,
    full: bool,
}

impl WavePartitioner {
    /// Creates a partitioner for the given network.
    pub fn new(graph: &GeometricGraph) -> Self {
        WavePartitioner {
            topology: graph.topology(),
            node_words: vec![0; graph.len().div_ceil(64)],
            touched_node_words: Vec::new(),
            cell_words: [0; CELL_WORDS],
            nodes_used: false,
            cells_used: false,
            full: false,
        }
    }

    /// Splits `planned` into maximal runs of consecutive ticks with pairwise
    /// disjoint footprints. Concatenating the returned ranges yields
    /// `0..planned.len()` exactly — the partition never reorders or drops a
    /// tick, it only marks where conflict boundaries fall.
    pub fn partition(
        &mut self,
        graph: &GeometricGraph,
        planned: &[(Tick, TickPlan)],
    ) -> Vec<Range<usize>> {
        let mut waves = Vec::new();
        if planned.is_empty() {
            return waves;
        }
        self.clear();
        let mut start = 0usize;
        for (i, (tick, plan)) in planned.iter().enumerate() {
            let footprint = self.footprint(graph, tick.node, plan);
            if i > start && self.conflicts(&footprint) {
                waves.push(start..i);
                self.clear();
                start = i;
            }
            self.mark(&footprint);
        }
        waves.push(start..planned.len());
        waves
    }

    fn clear(&mut self) {
        for &w in &self.touched_node_words {
            self.node_words[w] = 0;
        }
        self.touched_node_words.clear();
        self.cell_words = [0; CELL_WORDS];
        self.nodes_used = false;
        self.cells_used = false;
        self.full = false;
    }

    fn footprint(&self, graph: &GeometricGraph, source: NodeId, plan: &TickPlan) -> Footprint {
        match *plan {
            TickPlan::Skip { .. } => Footprint::Empty,
            TickPlan::Pair { partner } => Footprint::Nodes(source, partner),
            TickPlan::RoutePosition { target } => self.corridor(graph.position(source), target),
            TickPlan::RouteNode { target } => {
                self.corridor(graph.position(source), graph.position(target))
            }
        }
    }

    /// The two-disk corridor footprint (see [`Footprint::Cells`]).
    fn corridor(&self, source: Point, target: Point) -> Footprint {
        let d = self.topology.distance(source, target);
        let wrap = self.topology == Topology::Torus;
        let disks = [(target, d), (source, 2.0 * d)];
        let mut spans = [(None, None); 2];
        let mut cells = 0usize;
        for (i, &(center, radius)) in disks.iter().enumerate() {
            let cols = axis_span(center.x, radius, wrap);
            let rows = axis_span(center.y, radius, wrap);
            cells += cols.map_or(COARSE, |(_, c)| c) * rows.map_or(COARSE, |(_, c)| c);
            spans[i] = (cols, rows);
        }
        // Corridors covering most of the grid conflict with ~everything
        // anyway; collapsing them to `Full` keeps the per-tick partition cost
        // O(1) instead of O(cells) for the common long-range round.
        if cells >= COARSE * COARSE / 2 {
            Footprint::Full
        } else {
            Footprint::Cells(spans)
        }
    }

    fn conflicts(&self, footprint: &Footprint) -> bool {
        let any = self.nodes_used || self.cells_used || self.full;
        match footprint {
            Footprint::Empty => false,
            Footprint::Full => any,
            // Mixed node/cell footprints never share a run (one protocol per
            // run), but if they did, their domains are incomparable — treat
            // any mix as a conflict rather than reason about it.
            Footprint::Nodes(a, b) => {
                self.full || self.cells_used || self.node_bit(*a) || self.node_bit(*b)
            }
            Footprint::Cells(spans) => {
                self.full
                    || self.nodes_used
                    || spans.iter().any(|(cols, rows)| {
                        let mut hit = false;
                        for_each_cell(*cols, *rows, |word, bit| {
                            hit |= self.cell_words[word] & (1 << bit) != 0;
                        });
                        hit
                    })
            }
        }
    }

    fn mark(&mut self, footprint: &Footprint) {
        match footprint {
            Footprint::Empty => {}
            Footprint::Full => self.full = true,
            Footprint::Nodes(a, b) => {
                self.set_node_bit(*a);
                self.set_node_bit(*b);
                self.nodes_used = true;
            }
            Footprint::Cells(spans) => {
                for (cols, rows) in spans {
                    for_each_cell(*cols, *rows, |word, bit| {
                        self.cell_words[word] |= 1 << bit;
                    });
                }
                self.cells_used = true;
            }
        }
    }

    fn node_bit(&self, node: NodeId) -> bool {
        self.node_words[node.index() / 64] & (1 << (node.index() % 64)) != 0
    }

    fn set_node_bit(&mut self, node: NodeId) {
        let word = node.index() / 64;
        if self.node_words[word] == 0 {
            self.touched_node_words.push(word);
        }
        self.node_words[word] |= 1 << (node.index() % 64);
    }
}

/// Cell interval of `[center − radius, center + radius]` on one axis of the
/// coarse grid: `None` when the interval covers the whole axis, otherwise a
/// `(start, count)` pair (wrapped on the torus, clamped on the square).
fn axis_span(center: f64, radius: f64, wrap: bool) -> AxisSpan {
    if 2.0 * radius >= 1.0 {
        return None;
    }
    let lo = center - radius;
    let hi = center + radius;
    let cells = COARSE as f64;
    if wrap {
        let start = ((lo.rem_euclid(1.0) * cells).floor() as usize).min(COARSE - 1);
        let end = ((hi.rem_euclid(1.0) * cells).floor() as usize).min(COARSE - 1);
        let count = if end >= start {
            end - start + 1
        } else {
            COARSE - start + end + 1
        };
        Some((start, count))
    } else {
        let start = ((lo * cells).floor().max(0.0) as usize).min(COARSE - 1);
        let end = ((hi * cells).floor().max(0.0) as usize).min(COARSE - 1);
        Some((start, end - start + 1))
    }
}

/// Visits every `(word, bit)` of the rectangle spanned by the two axis spans.
fn for_each_cell(cols: AxisSpan, rows: AxisSpan, mut f: impl FnMut(usize, usize)) {
    let (col0, col_count) = cols.unwrap_or((0, COARSE));
    let (row0, row_count) = rows.unwrap_or((0, COARSE));
    for r in 0..row_count {
        let row = (row0 + r) % COARSE;
        for c in 0..col_count {
            let col = (col0 + c) % COARSE;
            let cell = row * COARSE + col;
            f(cell / 64, cell % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, 2.0)
    }

    fn tick(index: u64, node: usize) -> Tick {
        Tick {
            time: 0.0,
            index,
            node: NodeId(node),
        }
    }

    #[test]
    fn parallel_spec_validates_its_knobs() {
        assert!(ParallelSpec::with_threads(4).validate().is_ok());
        assert!(ParallelSpec::with_threads(0).validate().is_err());
        assert!(ParallelSpec::with_threads(2)
            .with_batch(0)
            .validate()
            .is_err());
        assert_eq!(ParallelSpec::with_threads(1).batch, DEFAULT_TICK_BATCH);
    }

    #[test]
    fn resolve_skip_and_pair_pass_through() {
        let g = graph(32, 1);
        assert_eq!(
            resolve_plan(&g, NodeId(3), &TickPlan::Skip { isolated: true }),
            ResolvedPlan::Skip { isolated: true }
        );
        assert_eq!(
            resolve_plan(&g, NodeId(3), &TickPlan::Pair { partner: NodeId(5) }),
            ResolvedPlan::Pair { partner: NodeId(5) }
        );
    }

    #[test]
    fn resolve_route_to_node_matches_direct_routing() {
        let g = graph(128, 2);
        let source = NodeId(0);
        let target = NodeId(100);
        let plan = TickPlan::RouteNode { target };
        let ResolvedPlan::Route {
            partner,
            outbound_hops,
            outbound_failed,
            back,
        } = resolve_plan(&g, source, &plan)
        else {
            panic!("routed plan must resolve to a route");
        };
        let (outcome, delivered) = route_terminus_to_node(&g, source, target);
        assert_eq!(partner, outcome.terminus);
        assert_eq!(outbound_hops, outcome.hops);
        assert_eq!(outbound_failed, !delivered);
        if partner != source {
            let (expected_back, expected_delivered) = route_terminus_to_node(&g, partner, source);
            assert_eq!(back, Some((expected_back.hops, expected_delivered)));
        } else {
            assert_eq!(back, None);
        }
    }

    #[test]
    fn disjoint_pairs_share_a_wave_and_overlapping_pairs_split() {
        let g = graph(64, 3);
        let mut partitioner = WavePartitioner::new(&g);
        let disjoint = vec![
            (tick(1, 0), TickPlan::Pair { partner: NodeId(1) }),
            (tick(2, 2), TickPlan::Pair { partner: NodeId(3) }),
            (tick(3, 4), TickPlan::Pair { partner: NodeId(5) }),
        ];
        assert_eq!(partitioner.partition(&g, &disjoint), vec![0..3]);

        let overlapping = vec![
            (tick(1, 0), TickPlan::Pair { partner: NodeId(1) }),
            (tick(2, 1), TickPlan::Pair { partner: NodeId(2) }),
            (tick(3, 5), TickPlan::Pair { partner: NodeId(6) }),
        ];
        // Tick 2 reuses sensor 1, so it starts a new wave (and sensor 5/6 can
        // join it).
        assert_eq!(partitioner.partition(&g, &overlapping), vec![0..1, 1..3]);
    }

    #[test]
    fn skips_never_break_a_wave() {
        let g = graph(64, 4);
        let mut partitioner = WavePartitioner::new(&g);
        let planned = vec![
            (tick(1, 0), TickPlan::Pair { partner: NodeId(1) }),
            (tick(2, 7), TickPlan::Skip { isolated: true }),
            (tick(3, 0), TickPlan::Skip { isolated: true }),
            (tick(4, 2), TickPlan::Pair { partner: NodeId(3) }),
        ];
        assert_eq!(partitioner.partition(&g, &planned), vec![0..4]);
    }

    #[test]
    fn long_range_rounds_conflict_conservatively() {
        let g = graph(256, 5);
        let mut partitioner = WavePartitioner::new(&g);
        // Two long-range rounds: corridors cover most of the square, so the
        // second must start its own wave (the sequential replay residue).
        let far = Point::new(0.95, 0.95);
        let planned = vec![
            (tick(1, 0), TickPlan::RoutePosition { target: far }),
            (tick(2, 1), TickPlan::RoutePosition { target: far }),
        ];
        let waves = partitioner.partition(&g, &planned);
        assert_eq!(waves, vec![0..1, 1..2]);
    }

    #[test]
    fn short_disjoint_corridors_share_a_wave() {
        use geogossip_geometry::Point;
        // A dense grid-free graph: sensors at two far-apart clusters; each
        // round stays within its own cluster, so corridors are tiny disks in
        // opposite corners that must not conflict.
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(Point::new(0.05 + 0.004 * i as f64, 0.05));
            pts.push(Point::new(0.9 + 0.004 * i as f64, 0.9));
        }
        let g = GeometricGraph::build(pts, 0.05);
        let mut partitioner = WavePartitioner::new(&g);
        let planned = vec![
            (
                tick(1, 0),
                TickPlan::RoutePosition {
                    target: Point::new(0.06, 0.05),
                },
            ),
            (
                tick(2, 1),
                TickPlan::RoutePosition {
                    target: Point::new(0.91, 0.9),
                },
            ),
        ];
        assert_eq!(partitioner.partition(&g, &planned), vec![0..2]);
    }

    #[test]
    fn partition_covers_the_batch_exactly() {
        let g = graph(128, 6);
        let mut partitioner = WavePartitioner::new(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let planned: Vec<(Tick, TickPlan)> = (0..200)
            .map(|i| {
                use rand::Rng;
                let node = rng.gen_range(0..g.len());
                let neighbors = g.neighbors(NodeId(node));
                let plan = if neighbors.is_empty() {
                    TickPlan::Skip { isolated: true }
                } else {
                    let v = neighbors[rng.gen_range(0..neighbors.len())] as usize;
                    TickPlan::Pair { partner: NodeId(v) }
                };
                (tick(i + 1, node), plan)
            })
            .collect();
        let waves = partitioner.partition(&g, &planned);
        assert!(!waves.is_empty());
        let mut next = 0usize;
        for wave in &waves {
            assert_eq!(wave.start, next, "waves must be contiguous");
            assert!(wave.end > wave.start, "waves must be non-empty");
            next = wave.end;
        }
        assert_eq!(next, planned.len());
    }

    #[test]
    fn axis_span_wraps_on_the_torus_and_clamps_on_the_square() {
        // A disk near the left edge wraps on the torus...
        let wrapped = axis_span(0.01, 0.05, true).unwrap();
        assert!(wrapped.1 >= 2);
        // ...and clamps to the first cells on the square.
        let clamped = axis_span(0.01, 0.05, false).unwrap();
        assert_eq!(clamped.0, 0);
        // A huge radius covers the whole axis either way.
        assert_eq!(axis_span(0.5, 0.6, true), None);
        assert_eq!(axis_span(0.5, 0.6, false), None);
    }
}
