//! Deterministic fault injection: lossy transmissions, node churn, and
//! stale-value nodes.
//!
//! The paper analyzes its protocols on pristine networks, but gossip's selling
//! point is graceful degradation — sensor networks drop packets, nodes die,
//! and some keep answering with stale measurements. This module makes those
//! faults first-class, reproducible scenario inputs:
//!
//! * [`FaultSpec`] — the declarative fault model carried by a
//!   `ScenarioSpec` (all keys optional; the default means "no faults").
//! * [`FaultContext`] — the per-tick view handed to fault-aware protocols via
//!   [`Activation::on_tick_faulty`]: was this activation's exchange dropped,
//!   which nodes are alive, which are stale.
//! * [`FaultSupport`] — the capability a protocol declares via
//!   [`Activation::fault_support`]; the runner rejects specs asking for fault
//!   kinds a protocol cannot model, rather than silently ignoring them.
//! * [`FaultyActivation`] — the engine-facing wrapper that owns all fault
//!   state (drop decisions, the churn schedule and its
//!   [`LivenessMask`], the stale set) and orchestrates the inner protocol.
//!
//! # Semantics
//!
//! * **Loss** (`drop-rate` = `p`): each activation of a live sensor is
//!   independently marked *dropped* with probability `p`. A dropped activation
//!   consumes its clock tick and is charged its full transmission cost
//!   (routing hops, local packets) but applies **no averaging** — cost without
//!   progress, modeling a lost data packet after the path was already paid
//!   for.
//! * **Churn** (`churn` schedule): each event kills a uniformly drawn set of
//!   `⌊fraction·n⌋` sensors at `at-tick`, optionally reviving the same set at
//!   `rejoin-tick`. Dead sensors consume their clock ticks doing nothing, are
//!   never chosen as gossip partners, and greedy routing detours around them
//!   (`route_terminus_masked`); a walk whose terminus region is dead stops at
//!   the nearest *live* local minimum. A rejoining sensor keeps the value it
//!   died with.
//! * **Stale** (`stale-fraction`): a uniformly drawn set of sensors stops
//!   updating but keeps answering with whatever value it holds. Partners still
//!   average against a stale node's frozen value, so stale nodes drag the
//!   achievable error floor up — the paper-relevant adversary for averaging.
//!
//! # Determinism
//!
//! All fault randomness draws from one dedicated stream derived from
//! `(seed, trial, `[`FAULT_STREAM_LABEL`]`)` via `SeedStream::trial`, in a
//! fixed order: the stale set first, then each churn event's node set in spec
//! order, then one drop decision per live activation. The placement, values,
//! clock, and protocol streams are untouched byte-for-byte, and the wrapper is
//! only ever constructed for a non-default [`FaultSpec`] — a no-fault spec
//! runs the bare protocol and stays bit-identical to the pre-fault engine
//! (pinned by `tests/fault_parity.rs`).

use crate::clock::Tick;
use crate::engine::{Activation, Clocking, SquaredError};
use crate::error::ProtocolError;
use crate::metrics::TransmissionCounter;
use geogossip_analysis::json::JsonValue;
use geogossip_graph::LivenessMask;
use geogossip_telemetry::{Event, NoProbe, Probe};
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The `SeedStream` label of the dedicated fault stream:
/// `seeds.trial(FAULT_STREAM_LABEL, trial)`. Changing this constant (or the
/// draw order documented on [`FaultyActivation::new`]) silently re-randomizes
/// every committed fault scenario — treat it as frozen, like the `"placement"`
/// / `"values"` / `"run"` labels.
pub const FAULT_STREAM_LABEL: &str = "faults";

/// One node-churn event: a uniformly drawn fraction of the network crashes at
/// a deterministic tick, optionally rejoining later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Fraction of the network to kill (`⌊fraction·n⌋` distinct sensors).
    pub fraction: f64,
    /// Engine tick index (1-based, like `Tick::index`) at which the set dies;
    /// the kill applies before that tick's activation is processed.
    pub at_tick: u64,
    /// Tick index at which the same set rejoins, or `None` for a permanent
    /// crash. Rejoining sensors keep the value they died with.
    pub rejoin_tick: Option<u64>,
}

/// The declarative fault model of a scenario. The default (`drop_rate` 0, no
/// churn, `stale_fraction` 0) means **no faults** and is what every spec
/// without a `faults` key gets — the schema-stability invariant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Per-activation loss probability `p ∈ [0, 1)`.
    pub drop_rate: f64,
    /// Fraction of sensors frozen as stale-value nodes, in `[0, 1)`.
    pub stale_fraction: f64,
    /// Node crash/rejoin schedule, applied in spec order.
    pub churn: Vec<ChurnEvent>,
}

impl FaultSpec {
    /// Whether this spec injects no faults at all (every key at its default).
    /// The runner only wraps the protocol when this is `false`, so no-fault
    /// runs cannot be perturbed by construction.
    pub fn is_none(&self) -> bool {
        self.drop_rate == 0.0 && self.stale_fraction == 0.0 && self.churn.is_empty()
    }

    /// Validates every fault parameter.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if !self.drop_rate.is_finite() || !(0.0..1.0).contains(&self.drop_rate) {
            return Err(ProtocolError::invalid(
                "faults.drop-rate",
                "must be a probability in [0, 1)",
            ));
        }
        if !self.stale_fraction.is_finite() || !(0.0..1.0).contains(&self.stale_fraction) {
            return Err(ProtocolError::invalid(
                "faults.stale-fraction",
                "must be a fraction in [0, 1)",
            ));
        }
        for (i, event) in self.churn.iter().enumerate() {
            if !event.fraction.is_finite() || !(0.0..1.0).contains(&event.fraction) {
                return Err(ProtocolError::invalid(
                    format!("faults.churn[{i}].fraction"),
                    "must be a fraction in [0, 1)",
                ));
            }
            if let Some(rejoin) = event.rejoin_tick {
                if rejoin <= event.at_tick {
                    return Err(ProtocolError::invalid(
                        format!("faults.churn[{i}].rejoin-tick"),
                        "must be strictly after at-tick",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Rejects fault kinds the protocol's declared [`FaultSupport`] cannot
    /// model — a spec asking the affine hierarchy for churn must fail loudly,
    /// not silently run fault-free.
    pub fn check_support(
        &self,
        protocol: &str,
        support: FaultSupport,
    ) -> Result<(), ProtocolError> {
        // Unsupported kinds are reported by *spec path* (the key the user
        // must delete), the same convention every validation error follows.
        let mut missing = Vec::new();
        if self.drop_rate > 0.0 && !support.loss {
            missing.push("faults.drop-rate");
        }
        if !self.churn.is_empty() && !support.churn {
            missing.push("faults.churn");
        }
        if self.stale_fraction > 0.0 && !support.stale {
            missing.push("faults.stale-fraction");
        }
        if missing.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::invalid(
                "faults",
                format!(
                    "protocol `{protocol}` does not support fault kind(s): {}",
                    missing.join(", ")
                ),
            ))
        }
    }

    /// Compact coordinate token for group keys and reports, e.g.
    /// `drop=0.1+stale=0.05` or `none` for the default spec.
    pub fn token(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.drop_rate > 0.0 {
            parts.push(format!("drop={}", self.drop_rate));
        }
        if self.stale_fraction > 0.0 {
            parts.push(format!("stale={}", self.stale_fraction));
        }
        if !self.churn.is_empty() {
            parts.push(format!("churn={}", self.churn.len()));
        }
        parts.join("+")
    }

    /// Serialises to the JSON `faults` object, emitting only non-default keys
    /// (so specs without faults keep their historical byte-exact rendering).
    pub fn to_json_value(&self) -> JsonValue {
        let mut entries = Vec::new();
        if self.drop_rate > 0.0 {
            entries.push(("drop-rate", self.drop_rate.into()));
        }
        if self.stale_fraction > 0.0 {
            entries.push(("stale-fraction", self.stale_fraction.into()));
        }
        if !self.churn.is_empty() {
            entries.push((
                "churn",
                JsonValue::Array(
                    self.churn
                        .iter()
                        .map(|event| {
                            let mut fields = vec![
                                ("fraction", event.fraction.into()),
                                ("at-tick", event.at_tick.into()),
                            ];
                            if let Some(rejoin) = event.rejoin_tick {
                                fields.push(("rejoin-tick", rejoin.into()));
                            }
                            JsonValue::object(fields)
                        })
                        .collect(),
                ),
            ));
        }
        JsonValue::object(entries)
    }

    /// Decodes a `faults` object; unknown keys hard-error (the same
    /// typos-fail-loudly rule as every other schema object).
    pub fn decode(doc: &JsonValue) -> Result<Self, ProtocolError> {
        let obj = doc
            .as_object()
            .ok_or_else(|| ProtocolError::malformed("`faults` must be an object"))?;
        for (key, _) in obj {
            if !matches!(key.as_str(), "drop-rate" | "stale-fraction" | "churn") {
                return Err(ProtocolError::malformed(format!(
                    "unknown faults key `{key}` (known: drop-rate, stale-fraction, churn)"
                )));
            }
        }
        let number = |key: &str| -> Result<f64, ProtocolError> {
            match doc.get(key) {
                None => Ok(0.0),
                Some(value) => value.as_f64().ok_or_else(|| {
                    ProtocolError::malformed(format!("`faults.{key}` must be a number"))
                }),
            }
        };
        let drop_rate = number("drop-rate")?;
        let stale_fraction = number("stale-fraction")?;
        let mut churn = Vec::new();
        if let Some(raw) = doc.get("churn") {
            let events = raw
                .as_array()
                .ok_or_else(|| ProtocolError::malformed("`faults.churn` must be an array"))?;
            for (i, event) in events.iter().enumerate() {
                let fields = event.as_object().ok_or_else(|| {
                    ProtocolError::malformed(format!("`faults.churn[{i}]` must be an object"))
                })?;
                for (key, _) in fields {
                    if !matches!(key.as_str(), "fraction" | "at-tick" | "rejoin-tick") {
                        return Err(ProtocolError::malformed(format!(
                            "unknown faults.churn key `{key}` (known: fraction, at-tick, \
                             rejoin-tick)"
                        )));
                    }
                }
                let fraction = event
                    .get("fraction")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| {
                        ProtocolError::malformed(format!(
                            "`faults.churn[{i}].fraction` must be a number"
                        ))
                    })?;
                let at_tick = event
                    .get("at-tick")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| {
                        ProtocolError::malformed(format!(
                            "`faults.churn[{i}].at-tick` must be a whole number"
                        ))
                    })?;
                let rejoin_tick = match event.get("rejoin-tick") {
                    None | Some(JsonValue::Null) => None,
                    Some(value) => Some(value.as_u64().ok_or_else(|| {
                        ProtocolError::malformed(format!(
                            "`faults.churn[{i}].rejoin-tick` must be a whole number or null"
                        ))
                    })?),
                };
                churn.push(ChurnEvent {
                    fraction,
                    at_tick,
                    rejoin_tick,
                });
            }
        }
        Ok(FaultSpec {
            drop_rate,
            stale_fraction,
            churn,
        })
    }
}

/// The fault kinds a protocol knows how to model, declared via
/// [`Activation::fault_support`]. The default (all `false`) keeps every
/// existing protocol fault-free until it opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSupport {
    /// Dropped activations: cost without progress.
    pub loss: bool,
    /// Crashed nodes: liveness-masked partner selection and routing.
    pub churn: bool,
    /// Stale nodes: frozen values that still answer.
    pub stale: bool,
}

impl FaultSupport {
    /// Support for every fault kind.
    pub const fn all() -> Self {
        FaultSupport {
            loss: true,
            churn: true,
            stale: true,
        }
    }

    /// Support for loss and stale nodes but not churn (protocols whose
    /// control structure cannot survive member death, e.g. the affine
    /// hierarchy's leader tree).
    pub const fn loss_and_stale() -> Self {
        FaultSupport {
            loss: true,
            churn: false,
            stale: true,
        }
    }
}

/// The per-tick fault view handed to [`Activation::on_tick_faulty`].
///
/// Empty slices are the trivial masks — every node alive, no node stale — so
/// protocols can query uniformly without the wrapper materialising bitmaps
/// for fault kinds that are inactive.
#[derive(Debug, Clone, Copy)]
pub struct FaultContext<'a> {
    /// Whether this activation's exchange is dropped: charge the full
    /// transmission cost, apply no averaging.
    pub dropped: bool,
    alive: &'a [bool],
    stale: &'a [bool],
}

impl<'a> FaultContext<'a> {
    /// Builds a context. Pass empty slices for trivially all-alive /
    /// none-stale masks.
    pub fn new(dropped: bool, alive: &'a [bool], stale: &'a [bool]) -> Self {
        FaultContext {
            dropped,
            alive,
            stale,
        }
    }

    /// Whether node `i` is alive (an empty mask means everyone is).
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive.get(i).copied().unwrap_or(true)
    }

    /// Whether node `i` is stale (an empty mask means nobody is).
    pub fn is_stale(&self, i: usize) -> bool {
        self.stale.get(i).copied().unwrap_or(false)
    }

    /// Whether any node is currently dead — protocols keep their unmasked
    /// fast paths while this is `false`.
    pub fn any_dead(&self) -> bool {
        !self.alive.is_empty()
    }

    /// The liveness bitmap for masked routing (empty ⇔ all alive).
    pub fn alive_mask(&self) -> &'a [bool] {
        self.alive
    }
}

/// What a churn schedule entry does when its tick arrives.
#[derive(Debug, Clone)]
enum ChurnAction {
    Kill(Vec<u32>),
    Revive(Vec<u32>),
}

/// The engine-facing fault orchestrator: wraps a protocol, owns all fault
/// state, and forwards ticks through [`Activation::on_tick_faulty`].
///
/// Constructed by the scenario runner **only** when the spec's [`FaultSpec`]
/// is non-default, so fault-free runs never pass through this type.
pub struct FaultyActivation<'a> {
    inner: Box<dyn Activation + 'a>,
    drop_rate: f64,
    fault_rng: ChaCha8Rng,
    mask: LivenessMask,
    stale: Vec<bool>,
    stale_count: usize,
    schedule: Vec<(u64, ChurnAction)>,
    next_event: usize,
    dropped_activations: u64,
    dead_activations: u64,
}

impl<'a> FaultyActivation<'a> {
    /// Wraps `inner` with the fault model of `spec` over an `n`-node network.
    ///
    /// `fault_rng` must be the dedicated fault stream
    /// (`seeds.trial(`[`FAULT_STREAM_LABEL`]`, trial)`). The construction-time
    /// draw order is frozen: the stale set first (`⌊stale_fraction·n⌋`
    /// distinct nodes by partial Fisher–Yates), then each churn event's node
    /// set in spec order; the remaining stream serves the per-activation drop
    /// decisions during the run.
    pub fn new(
        inner: Box<dyn Activation + 'a>,
        spec: &FaultSpec,
        n: usize,
        fault_rng: ChaCha8Rng,
    ) -> Self {
        let mut fault_rng = fault_rng;
        let stale_nodes = draw_distinct(
            n,
            (spec.stale_fraction * n as f64).floor() as usize,
            &mut fault_rng,
        );
        let mut stale = vec![false; if stale_nodes.is_empty() { 0 } else { n }];
        for &i in &stale_nodes {
            stale[i as usize] = true;
        }
        let mut schedule: Vec<(u64, ChurnAction)> = Vec::new();
        for event in &spec.churn {
            let nodes = draw_distinct(
                n,
                (event.fraction * n as f64).floor() as usize,
                &mut fault_rng,
            );
            if let Some(rejoin) = event.rejoin_tick {
                schedule.push((rejoin, ChurnAction::Revive(nodes.clone())));
            }
            schedule.push((event.at_tick, ChurnAction::Kill(nodes)));
        }
        // Stable sort: simultaneous actions apply in (rejoin-before-kill,
        // spec) order, deterministically.
        schedule.sort_by_key(|(tick, _)| *tick);
        FaultyActivation {
            inner,
            drop_rate: spec.drop_rate,
            fault_rng,
            mask: LivenessMask::all_alive(n),
            stale_count: stale_nodes.len(),
            stale,
            schedule,
            next_event: 0,
            dropped_activations: 0,
            dead_activations: 0,
        }
    }

    /// Activations that were marked dropped (cost charged, no averaging).
    pub fn dropped_activations(&self) -> u64 {
        self.dropped_activations
    }

    /// Activations of dead sensors (tick consumed, nothing else).
    pub fn dead_activations(&self) -> u64 {
        self.dead_activations
    }

    /// The current liveness mask (for tests and diagnostics).
    pub fn mask(&self) -> &LivenessMask {
        &self.mask
    }

    fn advance_schedule(&mut self, tick_index: u64) {
        while let Some((at, action)) = self.schedule.get(self.next_event) {
            if *at > tick_index {
                break;
            }
            match action {
                ChurnAction::Kill(nodes) => {
                    for &i in nodes {
                        self.mask.kill(i as usize);
                    }
                }
                ChurnAction::Revive(nodes) => {
                    for &i in nodes {
                        self.mask.revive(i as usize);
                    }
                }
            }
            self.next_event += 1;
        }
    }

    /// The single tick body behind both `on_tick` and `on_tick_probed`:
    /// identical fault semantics and RNG draws, with event emission folding
    /// away entirely when monomorphized over `NoProbe` (the unprobed trait
    /// path), exactly like the engine's own hot loop.
    fn tick_impl<Pr: Probe>(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut dyn RngCore,
        mut probe: Pr,
    ) {
        self.advance_schedule(tick.index);
        if !self.mask.is_alive(tick.node.index()) {
            // A dead sensor's clock still ticks, but nothing happens — and
            // crucially no protocol randomness is consumed.
            self.dead_activations += 1;
            if probe.enabled() {
                probe.on_event(Event::ActivationDead {
                    tick: tick.index,
                    node: tick.node.index() as u32,
                });
            }
            return;
        }
        if probe.enabled() && self.stale.get(tick.node.index()).copied().unwrap_or(false) {
            probe.on_event(Event::ActivationStale {
                tick: tick.index,
                node: tick.node.index() as u32,
            });
        }
        let dropped = self.drop_rate > 0.0 && self.fault_rng.gen::<f64>() < self.drop_rate;
        if dropped {
            self.dropped_activations += 1;
            if probe.enabled() {
                probe.on_event(Event::ActivationLost {
                    tick: tick.index,
                    node: tick.node.index() as u32,
                });
            }
        }
        let alive = if self.mask.any_dead() {
            self.mask.as_slice()
        } else {
            &[]
        };
        let context = FaultContext::new(dropped, alive, &self.stale);
        self.inner.on_tick_faulty(tick, tx, rng, &context);
    }
}

/// `k` distinct node indices by partial Fisher–Yates over `0..n`, from the
/// fault stream. `O(n)` per call — construction-time only.
///
/// Public because the net runtime rebuilds the same stale/churn node sets
/// from the same fault stream: both layers must draw identically or a
/// `transport` key would silently change which sensors fail.
pub fn draw_distinct(n: usize, k: usize, rng: &mut ChaCha8Rng) -> Vec<u32> {
    let k = k.min(n);
    let mut pool: Vec<u32> = (0..n as u32).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

impl Activation for FaultyActivation<'_> {
    fn on_tick(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
        self.tick_impl(tick, tx, rng, NoProbe);
    }

    fn on_tick_probed(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut dyn RngCore,
        probe: &mut dyn Probe,
    ) {
        self.tick_impl(tick, tx, rng, probe);
    }

    fn relative_error(&self) -> f64 {
        self.inner.relative_error()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn params(&self) -> Vec<(String, String)> {
        self.inner.params()
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        let mut metrics = self.inner.metrics();
        metrics.push((
            "dropped_activations".into(),
            self.dropped_activations as f64,
        ));
        metrics.push(("dead_activations".into(), self.dead_activations as f64));
        metrics.push(("stale_nodes".into(), self.stale_count as f64));
        metrics
    }

    fn rounds(&self) -> Option<u64> {
        self.inner.rounds()
    }

    fn halted(&self) -> bool {
        self.inner.halted()
    }

    fn clocking(&self) -> Clocking {
        self.inner.clocking()
    }

    fn trace_interval(&self) -> Option<u64> {
        self.inner.trace_interval()
    }

    fn squared_error(&self) -> Option<SquaredError> {
        self.inner.squared_error()
    }

    fn fault_support(&self) -> FaultSupport {
        self.inner.fault_support()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::point::NodeId;
    use rand::SeedableRng;

    fn spec_json(text: &str) -> Result<FaultSpec, ProtocolError> {
        let doc = JsonValue::parse(text).unwrap();
        FaultSpec::decode(&doc)
    }

    #[test]
    fn default_spec_is_none_and_renders_empty() {
        let spec = FaultSpec::default();
        assert!(spec.is_none());
        assert!(spec.validate().is_ok());
        assert_eq!(spec.token(), "none");
        assert_eq!(spec.to_json_value().render(), "{}");
    }

    #[test]
    fn json_round_trips_a_rich_spec() {
        let spec = FaultSpec {
            drop_rate: 0.25,
            stale_fraction: 0.1,
            churn: vec![
                ChurnEvent {
                    fraction: 0.2,
                    at_tick: 100,
                    rejoin_tick: Some(500),
                },
                ChurnEvent {
                    fraction: 0.05,
                    at_tick: 1000,
                    rejoin_tick: None,
                },
            ],
        };
        assert!(spec.validate().is_ok());
        let json = spec.to_json_value().render();
        let parsed = spec_json(&json).expect("round trip parses");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_json_value().render(), json);
        assert_eq!(spec.token(), "drop=0.25+stale=0.1+churn=2");
    }

    #[test]
    fn decode_rejects_unknown_keys_and_bad_shapes() {
        for (bad, fragment) in [
            (r#"{"drop-rate": 0.1, "oops": 1}"#, "unknown faults key"),
            (r#"{"drop-rate": "high"}"#, "must be a number"),
            (r#"{"churn": 3}"#, "must be an array"),
            (r#"{"churn": [{"fraction": 0.1}]}"#, "at-tick"),
            (
                r#"{"churn": [{"fraction": 0.1, "at-tick": 5, "typo": 1}]}"#,
                "unknown faults.churn key",
            ),
        ] {
            let err = spec_json(bad).expect_err(bad);
            assert!(
                err.to_string().contains(fragment),
                "error for {bad} was `{err}`, expected `{fragment}`"
            );
        }
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        let mut spec = FaultSpec {
            drop_rate: 1.0,
            ..FaultSpec::default()
        };
        assert!(spec.validate().is_err());
        spec.drop_rate = 0.5;
        spec.stale_fraction = -0.1;
        assert!(spec.validate().is_err());
        spec.stale_fraction = 0.0;
        spec.churn = vec![ChurnEvent {
            fraction: 0.1,
            at_tick: 10,
            rejoin_tick: Some(10),
        }];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn support_check_names_the_missing_kinds() {
        let spec = FaultSpec {
            drop_rate: 0.1,
            stale_fraction: 0.0,
            churn: vec![ChurnEvent {
                fraction: 0.1,
                at_tick: 1,
                rejoin_tick: None,
            }],
        };
        assert!(spec.check_support("x", FaultSupport::all()).is_ok());
        let err = spec
            .check_support("x", FaultSupport::loss_and_stale())
            .unwrap_err();
        assert!(err.to_string().contains("churn"), "got {err}");
        assert!(!err.to_string().contains("drop-rate"), "got {err}");
    }

    #[test]
    fn distinct_draws_are_deterministic_and_distinct() {
        let a = draw_distinct(50, 10, &mut ChaCha8Rng::seed_from_u64(1));
        let b = draw_distinct(50, 10, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.iter().all(|&i| i < 50));
        assert_eq!(
            draw_distinct(5, 10, &mut ChaCha8Rng::seed_from_u64(2)).len(),
            5
        );
    }

    /// A probe protocol that records which context each tick saw.
    struct Probe {
        ticks: Vec<(usize, bool, bool)>,
        faulty_calls: u64,
    }

    impl Activation for Probe {
        fn on_tick(&mut self, tick: Tick, _tx: &mut TransmissionCounter, _rng: &mut dyn RngCore) {
            self.ticks.push((tick.node.index(), false, false));
        }
        fn on_tick_faulty(
            &mut self,
            tick: Tick,
            _tx: &mut TransmissionCounter,
            _rng: &mut dyn RngCore,
            faults: &FaultContext<'_>,
        ) {
            self.faulty_calls += 1;
            self.ticks
                .push((tick.node.index(), faults.dropped, faults.any_dead()));
        }
        fn relative_error(&self) -> f64 {
            1.0
        }
        fn fault_support(&self) -> FaultSupport {
            FaultSupport::all()
        }
    }

    fn tick(index: u64, node: usize) -> Tick {
        Tick {
            time: index as f64,
            index,
            node: NodeId(node),
        }
    }

    #[test]
    fn churn_schedule_kills_and_revives_on_time() {
        let spec = FaultSpec {
            drop_rate: 0.0,
            stale_fraction: 0.0,
            churn: vec![ChurnEvent {
                fraction: 0.5,
                at_tick: 3,
                rejoin_tick: Some(6),
            }],
        };
        let probe = Probe {
            ticks: Vec::new(),
            faulty_calls: 0,
        };
        let mut faulty =
            FaultyActivation::new(Box::new(probe), &spec, 4, ChaCha8Rng::seed_from_u64(7));
        let mut tx = TransmissionCounter::new();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        assert_eq!(faulty.mask().alive_count(), 4);
        faulty.on_tick(tick(1, 0), &mut tx, &mut rng);
        assert_eq!(faulty.mask().alive_count(), 4);
        faulty.on_tick(tick(3, 0), &mut tx, &mut rng);
        assert_eq!(faulty.mask().alive_count(), 2, "2 of 4 killed at tick 3");
        faulty.on_tick(tick(6, 0), &mut tx, &mut rng);
        assert_eq!(faulty.mask().alive_count(), 4, "revived at tick 6");
    }

    #[test]
    fn dead_activations_consume_ticks_without_reaching_the_protocol() {
        let spec = FaultSpec {
            drop_rate: 0.0,
            stale_fraction: 0.0,
            churn: vec![ChurnEvent {
                // Kill everyone but leave the floor: 3 of 4.
                fraction: 0.9,
                at_tick: 1,
                rejoin_tick: None,
            }],
        };
        let probe = Probe {
            ticks: Vec::new(),
            faulty_calls: 0,
        };
        let mut faulty =
            FaultyActivation::new(Box::new(probe), &spec, 4, ChaCha8Rng::seed_from_u64(9));
        let mut tx = TransmissionCounter::new();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for node in 0..4 {
            faulty.on_tick(tick(node as u64 + 1, node), &mut tx, &mut rng);
        }
        assert_eq!(faulty.dead_activations(), 3);
        let metrics = faulty.metrics();
        assert!(metrics
            .iter()
            .any(|(k, v)| k == "dead_activations" && *v == 3.0));
    }

    #[test]
    fn drop_decisions_come_from_the_fault_stream_only() {
        let spec = FaultSpec {
            drop_rate: 0.5,
            ..FaultSpec::default()
        };
        let run = |fault_seed: u64| {
            let probe = Probe {
                ticks: Vec::new(),
                faulty_calls: 0,
            };
            let mut faulty = FaultyActivation::new(
                Box::new(probe),
                &spec,
                8,
                ChaCha8Rng::seed_from_u64(fault_seed),
            );
            let mut tx = TransmissionCounter::new();
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            for i in 0..64 {
                faulty.on_tick(tick(i + 1, (i % 8) as usize), &mut tx, &mut rng);
            }
            (faulty.dropped_activations(), rng)
        };
        let (drops_a, mut rng_a) = run(1);
        assert!(drops_a > 0 && drops_a < 64);
        // The protocol RNG end state is independent of the fault seed: the
        // probe consumes none, and drop decisions draw only from the
        // dedicated fault stream.
        let (_, mut rng_b) = run(2);
        for _ in 0..4 {
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }
    }
}
