//! Transmission accounting and convergence traces.
//!
//! The paper's cost model counts one-hop radio transmissions: a direct
//! neighbor exchange costs 2 (one packet each way), a geographically routed
//! exchange costs the number of hops of each leg, and flooding a cell costs
//! one transmission per member. Every protocol in the workspace charges its
//! communication to a [`TransmissionCounter`], and periodically records the
//! current ℓ₂ error into a [`ConvergenceTrace`]; all experiment tables and
//! figures are derived from these traces.

use serde::{Deserialize, Serialize};

/// Categorised counter of one-hop transmissions.
///
/// # Example
///
/// ```
/// use geogossip_sim::TransmissionCounter;
/// let mut tx = TransmissionCounter::new();
/// tx.charge_local(2);
/// tx.charge_routing(17);
/// tx.charge_control(5);
/// assert_eq!(tx.total(), 24);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmissionCounter {
    local: u64,
    routing: u64,
    control: u64,
}

impl TransmissionCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `count` transmissions spent on one-hop neighbor exchanges
    /// (the `Near` subroutine and the Boyd baseline).
    pub fn charge_local(&mut self, count: u64) {
        self.local += count;
    }

    /// Charges `count` transmissions spent on multi-hop geographic routing
    /// (the `Far` subroutine and the Dimakis baseline).
    pub fn charge_routing(&mut self, count: u64) {
        self.routing += count;
    }

    /// Charges `count` transmissions spent on control traffic
    /// (`Activate.square` / `Deactivate.square` flooding and leader signalling).
    pub fn charge_control(&mut self, count: u64) {
        self.control += count;
    }

    /// Transmissions spent on local neighbor exchanges.
    pub fn local(&self) -> u64 {
        self.local
    }

    /// Transmissions spent on geographic routing.
    pub fn routing(&self) -> u64 {
        self.routing
    }

    /// Transmissions spent on control traffic.
    pub fn control(&self) -> u64 {
        self.control
    }

    /// Total transmissions across all categories.
    pub fn total(&self) -> u64 {
        self.local + self.routing + self.control
    }

    /// Adds another counter's totals into this one.
    pub fn absorb(&mut self, other: &TransmissionCounter) {
        self.local += other.local;
        self.routing += other.routing;
        self.control += other.control;
    }
}

/// One sample of a convergence trace: cost spent so far and error remaining.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Total transmissions charged when the sample was taken.
    pub transmissions: u64,
    /// Global clock ticks elapsed when the sample was taken.
    pub ticks: u64,
    /// Relative ℓ₂ error `‖x(t) − x̄·1‖ / ‖x(0) − x̄·1‖` at the sample.
    pub relative_error: f64,
}

/// A time series of [`TracePoint`]s describing one protocol run.
///
/// The trace is what experiment E3 plots (error vs transmissions) and what
/// experiment E4 reduces to a single "transmissions to reach ε" number.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    points: Vec<TracePoint>,
}

impl ConvergenceTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Samples should be pushed in non-decreasing
    /// transmission order; this is asserted in debug builds.
    pub fn push(&mut self, point: TracePoint) {
        debug_assert!(
            self.points
                .last()
                .is_none_or(|p| p.transmissions <= point.transmissions),
            "trace samples must be pushed in cost order"
        );
        self.points.push(point);
    }

    /// The recorded samples in order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded relative error, or `None` for an empty trace.
    pub fn final_error(&self) -> Option<f64> {
        self.points.last().map(|p| p.relative_error)
    }

    /// The smallest transmission count at which the relative error was at or
    /// below `epsilon`, or `None` if the trace never got there.
    pub fn transmissions_to_reach(&self, epsilon: f64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.relative_error <= epsilon)
            .map(|p| p.transmissions)
    }

    /// The smallest tick count at which the relative error was at or below
    /// `epsilon`, or `None` if the trace never got there.
    pub fn ticks_to_reach(&self, epsilon: f64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.relative_error <= epsilon)
            .map(|p| p.ticks)
    }

    /// Drops every sample whose tick index is not a multiple of `stride`,
    /// in place.
    ///
    /// This is the engine's trace-capping primitive: when a long run would
    /// accumulate unbounded [`TracePoint`]s, the engine doubles its sampling
    /// stride and thins the already-recorded samples to match, so the trace
    /// always looks as if it had been sampled at the final stride from the
    /// start. The initial sample (tick 0) is always retained.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn thin_to_stride(&mut self, stride: u64) {
        assert!(stride > 0, "thinning stride must be positive");
        self.points.retain(|p| p.ticks.is_multiple_of(stride));
    }

    /// Renders the trace as a three-column table (`ticks`, `transmissions`,
    /// `relative-error`) for CSV/Markdown emission — the shape
    /// `geogossip run --trace-csv` writes, one file per trial, so the
    /// stride-thinned engine traces are plottable outside the report JSON.
    /// Errors use Rust's shortest-round-trip float formatting (parse back
    /// exactly).
    pub fn to_table(&self) -> geogossip_analysis::Table {
        let mut table =
            geogossip_analysis::Table::new(vec!["ticks", "transmissions", "relative-error"]);
        for point in &self.points {
            table.add_row(vec![
                point.ticks.to_string(),
                point.transmissions.to_string(),
                format!("{}", point.relative_error),
            ]);
        }
        table
    }

    /// Downsamples the trace to at most `max_points` samples (keeping the
    /// first and last), for compact figure output.
    pub fn downsample(&self, max_points: usize) -> ConvergenceTrace {
        if max_points == 0 || self.points.len() <= max_points {
            return self.clone();
        }
        let stride = (self.points.len() - 1) as f64 / (max_points - 1).max(1) as f64;
        let mut points = Vec::with_capacity(max_points);
        for k in 0..max_points {
            let idx = ((k as f64 * stride).round() as usize).min(self.points.len() - 1);
            points.push(self.points[idx]);
        }
        points.dedup_by_key(|p| p.transmissions);
        ConvergenceTrace { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ConvergenceTrace {
        let mut t = ConvergenceTrace::new();
        for i in 0..10u64 {
            t.push(TracePoint {
                transmissions: i * 100,
                ticks: i * 10,
                relative_error: 1.0 / (1.0 + i as f64),
            });
        }
        t
    }

    #[test]
    fn counter_categories_sum_to_total() {
        let mut tx = TransmissionCounter::new();
        tx.charge_local(5);
        tx.charge_routing(7);
        tx.charge_control(11);
        assert_eq!(tx.local(), 5);
        assert_eq!(tx.routing(), 7);
        assert_eq!(tx.control(), 11);
        assert_eq!(tx.total(), 23);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = TransmissionCounter::new();
        a.charge_local(1);
        let mut b = TransmissionCounter::new();
        b.charge_routing(2);
        b.charge_control(3);
        a.absorb(&b);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn transmissions_to_reach_finds_first_crossing() {
        let t = sample_trace();
        // error 1/(1+i) <= 0.25 first at i = 3 → 300 transmissions.
        assert_eq!(t.transmissions_to_reach(0.25), Some(300));
        assert_eq!(t.ticks_to_reach(0.25), Some(30));
        assert_eq!(t.transmissions_to_reach(1e-6), None);
    }

    #[test]
    fn final_error_is_last_sample() {
        let t = sample_trace();
        assert!((t.final_error().unwrap() - 0.1).abs() < 1e-12);
        assert!(ConvergenceTrace::new().final_error().is_none());
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let t = sample_trace();
        let d = t.downsample(4);
        assert!(d.len() <= 4);
        assert_eq!(d.points().first(), t.points().first());
        assert_eq!(d.points().last(), t.points().last());
        // Downsampling a short trace is the identity.
        assert_eq!(t.downsample(100), t);
    }

    #[test]
    fn thin_to_stride_keeps_multiples_and_the_origin() {
        let mut t = sample_trace(); // ticks 0, 10, 20, …, 90
        t.thin_to_stride(20);
        let ticks: Vec<u64> = t.points().iter().map(|p| p.ticks).collect();
        assert_eq!(ticks, vec![0, 20, 40, 60, 80]);
        // Thinning again at a doubled stride composes as expected.
        t.thin_to_stride(40);
        let ticks: Vec<u64> = t.points().iter().map(|p| p.ticks).collect();
        assert_eq!(ticks, vec![0, 40, 80]);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn thin_to_stride_rejects_zero() {
        sample_trace().thin_to_stride(0);
    }

    #[test]
    fn trace_table_has_one_row_per_point_and_round_trips_errors() {
        let t = sample_trace();
        let table = t.to_table();
        assert_eq!(table.len(), t.len());
        assert_eq!(
            table.headers(),
            &[
                "ticks".to_string(),
                "transmissions".into(),
                "relative-error".into()
            ]
        );
        // Every rendered error parses back to the exact stored bits.
        for (row, point) in table.rows().iter().zip(t.points()) {
            assert_eq!(row[0].parse::<u64>().unwrap(), point.ticks);
            assert_eq!(row[1].parse::<u64>().unwrap(), point.transmissions);
            assert_eq!(
                row[2].parse::<f64>().unwrap().to_bits(),
                point.relative_error.to_bits()
            );
        }
        let csv = table.to_csv();
        assert!(csv.starts_with("ticks,transmissions,relative-error\n"));
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = ConvergenceTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.transmissions_to_reach(0.5), None);
        assert_eq!(t.downsample(3).len(), 0);
    }
}
