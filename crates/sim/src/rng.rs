//! Deterministic seed management.
//!
//! Every experiment in EXPERIMENTS.md is identified by a single master seed;
//! the placement, the clock schedule, the target draws and the protocol's
//! internal randomness each get an independent, reproducible stream derived
//! from it. Deriving streams (rather than sharing one RNG) keeps results
//! stable when one component changes how much randomness it consumes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A factory of independent, reproducible RNG streams derived from a master
/// seed.
///
/// # Example
///
/// ```
/// use geogossip_sim::SeedStream;
/// let seeds = SeedStream::new(42);
/// let mut placement_rng = seeds.stream("placement");
/// let mut clock_rng = seeds.stream("clock");
/// // Streams with the same label are identical; different labels differ.
/// use rand::Rng;
/// assert_eq!(seeds.stream("placement").gen::<u64>(), {
///     let mut r = seeds.stream("placement");
///     r.gen::<u64>()
/// });
/// assert_ne!(placement_rng.gen::<u64>(), clock_rng.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Creates the factory from a master seed.
    pub fn new(master: u64) -> Self {
        SeedStream { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives a reproducible RNG for the component identified by `label`.
    ///
    /// The derivation is a simple FNV-1a hash of the label folded into the
    /// master seed; it is not cryptographic, it only needs to decorrelate
    /// streams.
    pub fn stream(&self, label: &str) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.master ^ fnv1a(label))
    }

    /// Derives a reproducible RNG for a numbered trial of a component,
    /// e.g. `trial("run", 3)` for the fourth repetition of an experiment.
    pub fn trial(&self, label: &str, index: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(
            self.master ^ fnv1a(label) ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

/// FNV-1a hash of a string, used to turn stream labels into seed offsets.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let seeds = SeedStream::new(7);
        let mut sa = seeds.stream("x");
        let mut sb = seeds.stream("x");
        let a: Vec<u64> = (0..5).map(|_| sa.gen()).collect();
        let b: Vec<u64> = (0..5).map(|_| sb.gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let seeds = SeedStream::new(7);
        assert_ne!(
            seeds.stream("a").gen::<u64>(),
            seeds.stream("b").gen::<u64>()
        );
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedStream::new(1).stream("x").gen::<u64>(),
            SeedStream::new(2).stream("x").gen::<u64>()
        );
    }

    #[test]
    fn trials_differ_from_each_other() {
        let seeds = SeedStream::new(11);
        let v: Vec<u64> = (0..4).map(|i| seeds.trial("run", i).gen()).collect();
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                assert_ne!(v[i], v[j]);
            }
        }
    }

    #[test]
    fn master_is_retrievable() {
        assert_eq!(SeedStream::new(99).master(), 99);
    }

    #[test]
    fn fnv_differs_for_different_strings() {
        assert_ne!(fnv1a("clock"), fnv1a("placement"));
        assert_ne!(fnv1a(""), fnv1a("a"));
    }
}
