//! Parameter-grid campaigns as data: the [`SweepSpec`] schema.
//!
//! The paper's headline result is a *scaling comparison* — transmissions to
//! ε-average grow like `n²` for nearest-neighbor gossip, `~n^{3/2}` for
//! geographic gossip and `n^{1+o(1)}` for the affine hierarchy. Reproducing
//! such a curve means running a **grid** of scenarios: every protocol at
//! every network size (and possibly every placement / surface / radius
//! regime / accuracy target). A [`SweepSpec`] declares that grid as data;
//! [`SweepSpec::expand`] turns it into a deterministic scenario matrix
//! (cartesian product), each cell a plain [`ScenarioSpec`] ready for the
//! [`Runner`](crate::scenario::Runner).
//!
//! # Determinism
//!
//! * **Cell order is part of the schema.** Axes expand nested, protocol
//!   outermost and `n` innermost:
//!   `protocol → transport → faults → surface → placement → radius → epsilon
//!   → n`. A sweep's cell index therefore never changes unless the sweep
//!   itself changes, which is what lets the lab's results log key checkpoints
//!   off `(index, name)`. The `faults` axis defaults to a single no-fault
//!   entry and the `transport` axis to a single default-transport (shared
//!   memory) entry, so sweeps that never mention either keep their
//!   historical indices.
//! * **Per-cell seeds derive from `(master_seed, cell_index)`** through a
//!   splitmix64 finalizer ([`derive_cell_seed`]), and the runner derives every
//!   per-trial stream from `(cell_seed, trial)` — so the full derivation chain
//!   is `(master_seed, cell_index, trial)` and cells stay statistically
//!   independent while remaining bit-reproducible in any execution order.
//!
//! # Schema
//!
//! ```json
//! {
//!   "sweep": "scaling-headline",
//!   "axes": {
//!     "n": [128, 256, 512],
//!     "protocol": [{"name": "pairwise", "params": {}}],
//!     "placement": ["uniform-square"],
//!     "radius": [{"connectivity-constant": 1.5}],
//!     "surface": ["unit-square"],
//!     "epsilon": [0.05]
//!   },
//!   "field": "spatial-gradient",
//!   "stop": {"max-ticks": 200000000, "max-transmissions": 1000000000},
//!   "trials": 2,
//!   "seed": 20070612
//! }
//! ```
//!
//! `n` and `protocol` are required; the other axes default to single-element
//! standard values. Unknown keys — top level, inside `axes`, inside `stop` —
//! are **hard errors**, mirroring the [`ScenarioSpec`] discipline. The
//! top-level `"sweep"` key doubles as the document discriminator: loaders
//! (`geogossip validate`) treat any document carrying it as a sweep.

use crate::batch::ParallelSpec;
use crate::error::ProtocolError;
use crate::fault::FaultSpec;
use crate::field::Field;
use crate::scenario::spec::{
    decode_parallelism, decode_placement, decode_protocol, decode_radius, decode_surface,
    placement_to_json, protocol_to_json, radius_to_json, PlacementSpec, ProtocolSpec, RadiusSpec,
    ScenarioSpec, TopologySpec, STANDARD_MAX_TICKS, STANDARD_RADIUS_CONSTANT, STANDARD_SEED,
};
use crate::transport::TransportSpec;
use crate::StopCondition;
use geogossip_analysis::json::JsonValue;
use geogossip_geometry::Topology;
use serde::{Deserialize, Serialize};

/// Default transmission cap of sweep cells (matches the scenario default).
const STANDARD_MAX_TRANSMISSIONS: u64 = 1_000_000_000;

/// A declarative parameter-grid campaign: axes over network size, protocol,
/// placement, radius regime, surface and accuracy target, expanded into a
/// deterministic matrix of [`ScenarioSpec`] cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Campaign label; prefixes every cell name and report file.
    pub name: String,
    /// Axis over the network size `n` (required, non-empty).
    pub sizes: Vec<usize>,
    /// Axis over protocols (required, non-empty).
    pub protocols: Vec<ProtocolSpec>,
    /// Axis over placements (defaults to `[UniformSquare]`).
    pub placements: Vec<PlacementSpec>,
    /// Axis over radius regimes (defaults to the standard connectivity
    /// constant).
    pub radii: Vec<RadiusSpec>,
    /// Axis over surfaces (defaults to `[UnitSquare]`).
    pub surfaces: Vec<Topology>,
    /// Axis over stop targets ε (defaults to `[0.05]`).
    pub epsilons: Vec<f64>,
    /// Axis over execution transports (`None` = shared-memory engine;
    /// defaults to a single `None` entry, which keeps historical cell
    /// indices and never constructs the net layer).
    pub transports: Vec<Option<TransportSpec>>,
    /// Axis over fault regimes (defaults to a single no-fault entry, which
    /// keeps historical cell indices and leaves the engine untouched).
    pub faults: Vec<FaultSpec>,
    /// Initial measurement field shared by every cell.
    pub field: Field,
    /// Intra-trial parallelism shared by every cell (`None` = sequential).
    /// An execution knob, not an axis: parallel execution is bit-identical
    /// to sequential, so sweeping over it would duplicate every cell.
    pub parallelism: Option<ParallelSpec>,
    /// Tick cap shared by every cell (`None` disables the cap).
    pub max_ticks: Option<u64>,
    /// Transmission cap shared by every cell (`None` disables the cap).
    pub max_transmissions: Option<u64>,
    /// Trials per cell.
    pub trials: u64,
    /// Master seed; every cell derives its own seed from
    /// `(seed, cell_index)`.
    pub seed: u64,
}

/// One cell of an expanded sweep: its position in the matrix plus the
/// ready-to-run scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Flat index in expansion order (stable across resumes).
    pub index: u64,
    /// The concrete scenario, with derived name and seed.
    pub spec: ScenarioSpec,
}

/// Derives the seed of sweep cell `cell_index` from the campaign's master
/// seed: a splitmix64 finalizer over `master ⊕ (index · φ64)`. Distinct
/// cells get decorrelated seeds; the same `(master, index)` always yields
/// the same seed, in any execution order.
pub fn derive_cell_seed(master: u64, cell_index: u64) -> u64 {
    let mut z = master ^ cell_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SweepSpec {
    /// A sweep over the two required axes with standard defaults everywhere
    /// else: uniform placement, standard radius, unit square, ε = 0.05,
    /// gradient field, scenario-standard caps, one trial, the standard seed.
    pub fn new(name: impl Into<String>, sizes: Vec<usize>, protocols: Vec<ProtocolSpec>) -> Self {
        SweepSpec {
            name: name.into(),
            sizes,
            protocols,
            placements: vec![PlacementSpec::UniformSquare],
            radii: vec![RadiusSpec::ConnectivityConstant(STANDARD_RADIUS_CONSTANT)],
            surfaces: vec![Topology::UnitSquare],
            epsilons: vec![0.05],
            transports: vec![None],
            faults: vec![FaultSpec::default()],
            field: Field::SpatialGradient,
            parallelism: None,
            max_ticks: Some(STANDARD_MAX_TICKS),
            max_transmissions: Some(STANDARD_MAX_TRANSMISSIONS),
            trials: 1,
            seed: STANDARD_SEED,
        }
    }

    /// Replaces the trial count (builder style).
    pub fn with_trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Replaces the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the ε axis (builder style).
    pub fn with_epsilons(mut self, epsilons: Vec<f64>) -> Self {
        self.epsilons = epsilons;
        self
    }

    /// Replaces the fault-regime axis (builder style).
    pub fn with_faults_axis(mut self, faults: Vec<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the transport axis (builder style).
    pub fn with_transport_axis(mut self, transports: Vec<Option<TransportSpec>>) -> Self {
        self.transports = transports;
        self
    }

    /// Replaces the shared field (builder style).
    pub fn with_field(mut self, field: Field) -> Self {
        self.field = field;
        self
    }

    /// Enables intra-trial parallelism in every cell (builder style).
    pub fn with_parallelism(mut self, parallelism: ParallelSpec) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Number of cells the sweep expands to.
    pub fn cell_count(&self) -> u64 {
        (self.protocols.len()
            * self.transports.len()
            * self.faults.len()
            * self.surfaces.len()
            * self.placements.len()
            * self.radii.len()
            * self.epsilons.len()
            * self.sizes.len()) as u64
    }

    /// Expands the grid into its scenario matrix, in the canonical cell
    /// order (protocol outermost, `n` innermost). Cell names are
    /// `{sweep}/c{index:04}-{protocol}-n{n}` — unique by index, readable by
    /// protocol and size.
    pub fn expand(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count() as usize);
        let mut index = 0u64;
        for protocol in &self.protocols {
            for &transport in &self.transports {
                for faults in &self.faults {
                    for &surface in &self.surfaces {
                        for &placement in &self.placements {
                            for &radius in &self.radii {
                                for &epsilon in &self.epsilons {
                                    for &n in &self.sizes {
                                        let spec = ScenarioSpec {
                                            name: format!(
                                                "{}/c{:04}-{}-n{}",
                                                self.name, index, protocol.name, n
                                            ),
                                            topology: TopologySpec {
                                                n,
                                                placement,
                                                radius,
                                                surface,
                                            },
                                            field: self.field,
                                            protocol: protocol.clone(),
                                            stop: StopCondition {
                                                epsilon,
                                                max_ticks: self.max_ticks,
                                                max_transmissions: self.max_transmissions,
                                            },
                                            faults: faults.clone(),
                                            transport,
                                            parallelism: self.parallelism,
                                            trials: self.trials,
                                            seed: derive_cell_seed(self.seed, index),
                                        };
                                        cells.push(SweepCell { index, spec });
                                        index += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Checks every parameter of the sweep, including every expanded cell,
    /// returning the first violation.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.name.is_empty() {
            return Err(ProtocolError::invalid("sweep", "must be non-empty"));
        }
        for (axis, len) in [
            ("axes.n", self.sizes.len()),
            ("axes.protocol", self.protocols.len()),
            ("axes.placement", self.placements.len()),
            ("axes.radius", self.radii.len()),
            ("axes.surface", self.surfaces.len()),
            ("axes.epsilon", self.epsilons.len()),
            ("axes.transport", self.transports.len()),
            ("axes.faults", self.faults.len()),
        ] {
            if len == 0 {
                return Err(ProtocolError::invalid(axis, "axis must be non-empty"));
            }
        }
        if self.trials == 0 {
            return Err(ProtocolError::invalid("trials", "need at least one trial"));
        }
        for cell in self.expand() {
            cell.spec.validate().map_err(|e| {
                ProtocolError::malformed(format!("cell {} (`{}`): {e}", cell.index, cell.spec.name))
            })?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // JSON serde (hand-rendered through `geogossip_analysis::json`).
    // ------------------------------------------------------------------

    /// Whether a parsed JSON document is a sweep (carries the top-level
    /// `"sweep"` key) rather than a scenario.
    pub fn is_sweep_document(doc: &JsonValue) -> bool {
        doc.get("sweep").is_some()
    }

    /// Serialises the sweep to its JSON document model. The `faults` axis is
    /// emitted only when it differs from the single no-fault default, so
    /// documents written before faults existed render byte-identically.
    pub fn to_json_value(&self) -> JsonValue {
        let optional_cap = |cap: Option<u64>| cap.map_or(JsonValue::Null, JsonValue::from);
        let mut axes = vec![
            (
                "n",
                JsonValue::Array(self.sizes.iter().map(|&n| n.into()).collect()),
            ),
            (
                "protocol",
                JsonValue::Array(self.protocols.iter().map(protocol_to_json).collect()),
            ),
            (
                "placement",
                JsonValue::Array(self.placements.iter().map(placement_to_json).collect()),
            ),
            (
                "radius",
                JsonValue::Array(self.radii.iter().map(radius_to_json).collect()),
            ),
            (
                "surface",
                JsonValue::Array(
                    self.surfaces
                        .iter()
                        .map(|s| JsonValue::string(s.token()))
                        .collect(),
                ),
            ),
            (
                "epsilon",
                JsonValue::Array(self.epsilons.iter().map(|&e| e.into()).collect()),
            ),
        ];
        if self.transports != vec![None] {
            axes.push((
                "transport",
                JsonValue::Array(
                    self.transports
                        .iter()
                        .map(|t| {
                            t.as_ref()
                                .map_or(JsonValue::Null, TransportSpec::to_json_value)
                        })
                        .collect(),
                ),
            ));
        }
        if self.faults != vec![FaultSpec::default()] {
            axes.push((
                "faults",
                JsonValue::Array(self.faults.iter().map(FaultSpec::to_json_value).collect()),
            ));
        }
        let mut fields = vec![
            ("sweep", JsonValue::string(self.name.clone())),
            ("axes", JsonValue::object(axes)),
            ("field", JsonValue::string(self.field.token())),
            (
                "stop",
                JsonValue::object(vec![
                    ("max-ticks", optional_cap(self.max_ticks)),
                    ("max-transmissions", optional_cap(self.max_transmissions)),
                ]),
            ),
        ];
        if let Some(parallelism) = &self.parallelism {
            fields.push((
                "parallelism",
                JsonValue::object(vec![
                    ("threads", parallelism.threads.into()),
                    ("batch", parallelism.batch.into()),
                ]),
            ));
        }
        fields.push(("trials", self.trials.into()));
        fields.push(("seed", self.seed.into()));
        JsonValue::object(fields)
    }

    /// Renders the sweep as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    /// Parses a sweep from JSON text and validates it.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MalformedSpec`] for syntax or schema violations
    /// (unknown keys are hard errors), plus everything
    /// [`SweepSpec::validate`] reports.
    pub fn from_json(text: &str) -> Result<Self, ProtocolError> {
        let doc = JsonValue::parse(text).map_err(|e| ProtocolError::malformed(e.to_string()))?;
        Self::from_json_value(&doc)
    }

    /// Parses a sweep from its JSON document model and validates it.
    pub fn from_json_value(doc: &JsonValue) -> Result<Self, ProtocolError> {
        let spec = Self::decode(doc)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Loads a sweep from a JSON file; messages carry the file path.
    pub fn load_file(path: &str) -> Result<Self, ProtocolError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ProtocolError::malformed(format!("cannot read `{path}`: {e}")))?;
        let doc = JsonValue::parse(&text)
            .map_err(|e| ProtocolError::malformed(format!("{path}: {e}")))?;
        Self::from_json_value(&doc).map_err(|e| ProtocolError::malformed(format!("{path}: {e}")))
    }

    fn decode(doc: &JsonValue) -> Result<Self, ProtocolError> {
        let obj = doc
            .as_object()
            .ok_or_else(|| ProtocolError::malformed("sweep must be a JSON object"))?;
        for (key, _) in obj {
            if !matches!(
                key.as_str(),
                "sweep" | "axes" | "field" | "stop" | "parallelism" | "trials" | "seed"
            ) {
                return Err(ProtocolError::malformed(format!(
                    "unknown sweep key `{key}`"
                )));
            }
        }
        let name = doc
            .get("sweep")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| {
                ProtocolError::malformed("`sweep` must be a string (the campaign name)")
            })?
            .to_string();
        let axes = doc
            .get("axes")
            .ok_or_else(|| ProtocolError::malformed("missing `axes`"))?;
        let axes_obj = axes
            .as_object()
            .ok_or_else(|| ProtocolError::malformed("`axes` must be an object"))?;
        for (key, _) in axes_obj {
            if !matches!(
                key.as_str(),
                "n" | "protocol"
                    | "placement"
                    | "radius"
                    | "surface"
                    | "epsilon"
                    | "transport"
                    | "faults"
            ) {
                return Err(ProtocolError::malformed(format!(
                    "unknown axis `{key}` (known: n, protocol, placement, radius, surface, epsilon, transport, faults)"
                )));
            }
        }
        let axis = |key: &str| -> Result<Option<&[JsonValue]>, ProtocolError> {
            match axes.get(key) {
                None => Ok(None),
                Some(value) => value.as_array().map(Some).ok_or_else(|| {
                    ProtocolError::malformed(format!("`axes.{key}` must be an array"))
                }),
            }
        };
        let sizes: Vec<usize> = axis("n")?
            .ok_or_else(|| ProtocolError::malformed("missing `axes.n`"))?
            .iter()
            .map(|v| {
                v.as_u64().map(|n| n as usize).ok_or_else(|| {
                    ProtocolError::malformed("`axes.n` entries must be whole numbers")
                })
            })
            .collect::<Result<_, _>>()?;
        let protocols: Vec<ProtocolSpec> = axis("protocol")?
            .ok_or_else(|| ProtocolError::malformed("missing `axes.protocol`"))?
            .iter()
            .map(decode_protocol)
            .collect::<Result<_, _>>()?;
        let placements: Vec<PlacementSpec> = match axis("placement")? {
            None => vec![PlacementSpec::UniformSquare],
            Some(items) => items
                .iter()
                .map(decode_placement)
                .collect::<Result<_, _>>()?,
        };
        let radii: Vec<RadiusSpec> = match axis("radius")? {
            None => vec![RadiusSpec::ConnectivityConstant(STANDARD_RADIUS_CONSTANT)],
            Some(items) => items.iter().map(decode_radius).collect::<Result<_, _>>()?,
        };
        let surfaces: Vec<Topology> = match axis("surface")? {
            None => vec![Topology::UnitSquare],
            Some(items) => items.iter().map(decode_surface).collect::<Result<_, _>>()?,
        };
        let epsilons: Vec<f64> = match axis("epsilon")? {
            None => vec![0.05],
            Some(items) => items
                .iter()
                .map(|v| {
                    v.as_f64().ok_or_else(|| {
                        ProtocolError::malformed("`axes.epsilon` entries must be numbers")
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        let transports: Vec<Option<TransportSpec>> = match axis("transport")? {
            None => vec![None],
            Some(items) => items
                .iter()
                .map(|v| match v {
                    // `null` = the default shared-memory engine, so one axis
                    // can compare it against net transports directly.
                    JsonValue::Null => Ok(None),
                    other => TransportSpec::decode(other).map(Some),
                })
                .collect::<Result<_, _>>()?,
        };
        let faults: Vec<FaultSpec> = match axis("faults")? {
            None => vec![FaultSpec::default()],
            Some(items) => items
                .iter()
                .map(FaultSpec::decode)
                .collect::<Result<_, _>>()?,
        };
        let field_token = doc
            .get("field")
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ProtocolError::malformed("`field` must be a string"))
            })
            .transpose()?
            .unwrap_or_else(|| "spatial-gradient".to_string());
        let field = Field::parse(&field_token).ok_or_else(|| {
            ProtocolError::malformed(format!(
                "unknown field `{field_token}` (known: spike, uniform, ramp, bimodal, spatial-gradient)"
            ))
        })?;
        let (max_ticks, max_transmissions) = match doc.get("stop") {
            None => (Some(STANDARD_MAX_TICKS), Some(STANDARD_MAX_TRANSMISSIONS)),
            Some(stop) => {
                let stop_obj = stop
                    .as_object()
                    .ok_or_else(|| ProtocolError::malformed("`stop` must be an object"))?;
                for (key, _) in stop_obj {
                    if !matches!(key.as_str(), "max-ticks" | "max-transmissions") {
                        return Err(ProtocolError::malformed(format!(
                            "unknown sweep stop key `{key}` (ε is an axis: `axes.epsilon`)"
                        )));
                    }
                }
                let cap = |key: &str, default: Option<u64>| -> Result<Option<u64>, ProtocolError> {
                    match stop.get(key) {
                        None => Ok(default),
                        Some(JsonValue::Null) => Ok(None),
                        Some(value) => value.as_u64().map(Some).ok_or_else(|| {
                            ProtocolError::malformed(format!(
                                "`stop.{key}` must be a whole number or null"
                            ))
                        }),
                    }
                };
                (
                    cap("max-ticks", Some(STANDARD_MAX_TICKS))?,
                    cap("max-transmissions", Some(STANDARD_MAX_TRANSMISSIONS))?,
                )
            }
        };
        let parallelism = match doc.get("parallelism") {
            None => None,
            Some(value) => Some(decode_parallelism(value)?),
        };
        let trials = match doc.get("trials") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| ProtocolError::malformed("`trials` must be a whole number"))?,
        };
        let seed = match doc.get("seed") {
            None => STANDARD_SEED,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| ProtocolError::malformed("`seed` must be a whole number"))?,
        };
        Ok(SweepSpec {
            name,
            sizes,
            protocols,
            placements,
            radii,
            surfaces,
            epsilons,
            transports,
            faults,
            field,
            parallelism,
            max_ticks,
            max_transmissions,
            trials,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::{Point, Rect};

    fn two_axis_sweep() -> SweepSpec {
        SweepSpec::new(
            "demo",
            vec![64, 128],
            vec![
                ProtocolSpec::named("pairwise"),
                ProtocolSpec::named("geographic"),
            ],
        )
        .with_trials(2)
        .with_seed(7)
    }

    #[test]
    fn expansion_order_is_protocol_major_n_minor() {
        let cells = two_axis_sweep().expand();
        assert_eq!(cells.len(), 4);
        let names: Vec<&str> = cells.iter().map(|c| c.spec.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "demo/c0000-pairwise-n64",
                "demo/c0001-pairwise-n128",
                "demo/c0002-geographic-n64",
                "demo/c0003-geographic-n128",
            ]
        );
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i as u64);
            assert_eq!(cell.spec.trials, 2);
        }
    }

    #[test]
    fn cell_seeds_derive_from_master_and_index() {
        let cells = two_axis_sweep().expand();
        // Distinct cells get distinct seeds; the derivation is pure.
        for i in 0..cells.len() {
            assert_eq!(cells[i].spec.seed, derive_cell_seed(7, i as u64));
            for j in (i + 1)..cells.len() {
                assert_ne!(cells[i].spec.seed, cells[j].spec.seed);
            }
        }
        // A different master seed moves every cell.
        let moved = two_axis_sweep().with_seed(8).expand();
        for (a, b) in cells.iter().zip(&moved) {
            assert_ne!(a.spec.seed, b.spec.seed);
        }
        // Expansion is deterministic.
        assert_eq!(cells, two_axis_sweep().expand());
    }

    #[test]
    fn full_grid_count_and_axis_placement() {
        let mut sweep = two_axis_sweep();
        sweep.surfaces = vec![Topology::UnitSquare, Topology::Torus];
        sweep.epsilons = vec![0.1, 0.2, 0.3];
        assert_eq!(sweep.cell_count(), 2 * 2 * 2 * 3);
        let cells = sweep.expand();
        assert_eq!(cells.len(), 24);
        // n is the innermost axis: consecutive cells differ only in n first.
        assert_eq!(cells[0].spec.topology.n, 64);
        assert_eq!(cells[1].spec.topology.n, 128);
        assert_eq!(cells[0].spec.stop.epsilon, cells[1].spec.stop.epsilon);
        // epsilon changes next.
        assert_eq!(cells[2].spec.stop.epsilon, 0.2);
    }

    #[test]
    fn parallelism_is_a_shared_knob_that_round_trips() {
        let sweep = two_axis_sweep().with_parallelism(ParallelSpec::with_threads(4));
        for cell in sweep.expand() {
            assert_eq!(cell.spec.parallelism, Some(ParallelSpec::with_threads(4)));
        }
        let json = sweep.to_json();
        assert!(json.contains("\"parallelism\""));
        let parsed = SweepSpec::from_json(&json).expect("parallel sweep round trips");
        assert_eq!(parsed, sweep);
        assert_eq!(parsed.to_json(), json);

        // Absent key → sequential cells and no key in the rendering.
        let plain = two_axis_sweep();
        assert!(!plain.to_json().contains("parallelism"));
        assert!(plain.expand().iter().all(|c| c.spec.parallelism.is_none()));
    }

    #[test]
    fn json_round_trips_a_rich_sweep() {
        let mut sweep = two_axis_sweep().with_epsilons(vec![0.05, 0.1]);
        sweep.placements = vec![
            PlacementSpec::UniformSquare,
            PlacementSpec::Clustered {
                clusters: 4,
                spread: 0.06,
            },
            PlacementSpec::Perforated {
                hole: Rect::new(Point::new(0.4, 0.4), Point::new(0.6, 0.6)),
            },
        ];
        sweep.surfaces = vec![Topology::UnitSquare, Topology::Torus];
        sweep.radii = vec![
            RadiusSpec::ConnectivityConstant(1.5),
            RadiusSpec::Absolute(0.2),
        ];
        sweep.max_transmissions = None;
        sweep.field = Field::parse("bimodal").unwrap();

        let json = sweep.to_json();
        let parsed = SweepSpec::from_json(&json).expect("round trip parses");
        assert_eq!(parsed, sweep);
        assert_eq!(
            parsed.to_json(),
            json,
            "JSON → sweep → JSON is a fixed point"
        );
    }

    #[test]
    fn json_defaults_fill_missing_axes() {
        let sweep = SweepSpec::from_json(
            r#"{"sweep": "mini", "axes": {"n": [64], "protocol": [{"name": "pairwise"}]}}"#,
        )
        .expect("minimal sweep parses");
        assert_eq!(sweep.placements, vec![PlacementSpec::UniformSquare]);
        assert_eq!(
            sweep.radii,
            vec![RadiusSpec::ConnectivityConstant(STANDARD_RADIUS_CONSTANT)]
        );
        assert_eq!(sweep.surfaces, vec![Topology::UnitSquare]);
        assert_eq!(sweep.epsilons, vec![0.05]);
        assert_eq!(sweep.trials, 1);
        assert_eq!(sweep.seed, STANDARD_SEED);
        assert_eq!(sweep.max_ticks, Some(STANDARD_MAX_TICKS));
    }

    #[test]
    fn json_rejects_schema_violations() {
        for (bad, fragment) in [
            (r#"[]"#, "object"),
            (
                r#"{"axes": {"n": [64], "protocol": [{"name": "x"}]}}"#,
                "sweep",
            ),
            (r#"{"sweep": "s"}"#, "axes"),
            (
                r#"{"sweep": "s", "axes": {"protocol": [{"name": "x"}]}}"#,
                "axes.n",
            ),
            (r#"{"sweep": "s", "axes": {"n": [64]}}"#, "axes.protocol"),
            (
                r#"{"sweep": "s", "axes": {"n": [64], "protocol": [{"name": "x"}]}, "oops": 1}"#,
                "unknown sweep key",
            ),
            (
                r#"{"sweep": "s", "axes": {"n": [64], "protocol": [{"name": "x"}], "temperature": [1]}}"#,
                "unknown axis",
            ),
            (
                r#"{"sweep": "s", "axes": {"n": [], "protocol": [{"name": "x"}]}}"#,
                "axes.n",
            ),
            (
                r#"{"sweep": "s", "axes": {"n": [64], "protocol": [{"name": "x"}], "epsilon": [-1]}}"#,
                "epsilon",
            ),
            (
                r#"{"sweep": "s", "axes": {"n": [64], "protocol": [{"name": "x"}], "surface": ["moebius"]}}"#,
                "surface",
            ),
            (
                r#"{"sweep": "s", "axes": {"n": [64], "protocol": [{"name": "x"}]}, "stop": {"epsilon": 0.1}}"#,
                "unknown sweep stop key",
            ),
            (
                r#"{"sweep": "s", "axes": {"n": [1], "protocol": [{"name": "x"}]}}"#,
                "two sensors",
            ),
        ] {
            let err = SweepSpec::from_json(bad).expect_err(bad);
            assert!(
                err.to_string().contains(fragment),
                "error for {bad} was `{err}`, expected to mention `{fragment}`"
            );
        }
    }

    #[test]
    fn faults_axis_expands_between_protocol_and_surface() {
        let drop = FaultSpec {
            drop_rate: 0.2,
            ..FaultSpec::default()
        };
        let sweep = two_axis_sweep().with_faults_axis(vec![FaultSpec::default(), drop.clone()]);
        assert_eq!(sweep.cell_count(), 2 * 2 * 2);
        let cells = sweep.expand();
        // faults sits just inside protocol: per protocol, first all sizes at
        // no-fault, then all sizes at drop=0.2.
        assert!(cells[0].spec.faults.is_none());
        assert!(cells[1].spec.faults.is_none());
        assert_eq!(cells[2].spec.faults, drop);
        assert_eq!(cells[3].spec.faults, drop);
        assert_eq!(cells[0].spec.protocol.name, "pairwise");
        assert_eq!(cells[3].spec.protocol.name, "pairwise");
        assert_eq!(cells[4].spec.protocol.name, "geographic");
        // The default singleton axis leaves historical cells untouched.
        let plain = two_axis_sweep().expand();
        let defaulted = two_axis_sweep()
            .with_faults_axis(vec![FaultSpec::default()])
            .expand();
        assert_eq!(plain, defaulted);
    }

    #[test]
    fn json_round_trips_the_faults_axis_and_omits_the_default() {
        let sweep = two_axis_sweep().with_faults_axis(vec![
            FaultSpec::default(),
            FaultSpec {
                drop_rate: 0.25,
                stale_fraction: 0.1,
                ..FaultSpec::default()
            },
        ]);
        let json = sweep.to_json();
        assert!(json.contains("\"faults\""));
        let parsed = SweepSpec::from_json(&json).expect("faulty sweep parses");
        assert_eq!(parsed, sweep);
        assert_eq!(parsed.to_json(), json, "fixed point with a faults axis");

        // A sweep on the default axis renders without the key at all.
        let plain_json = two_axis_sweep().to_json();
        assert!(!plain_json.contains("faults"));
        let plain = SweepSpec::from_json(&plain_json).expect("plain sweep parses");
        assert_eq!(plain.faults, vec![FaultSpec::default()]);

        // Bad fault entries are rejected with the axis discipline.
        let err = SweepSpec::from_json(
            r#"{"sweep": "s", "axes": {"n": [64], "protocol": [{"name": "pairwise"}], "faults": [{"drop-rate": 2.0}]}}"#,
        )
        .expect_err("out-of-range drop rate");
        assert!(err.to_string().contains("drop-rate"), "got `{err}`");
        let err = SweepSpec::from_json(
            r#"{"sweep": "s", "axes": {"n": [64], "protocol": [{"name": "pairwise"}], "faults": [{"spoons": 1}]}}"#,
        )
        .expect_err("unknown fault key");
        assert!(err.to_string().contains("spoons"), "got `{err}`");
    }

    #[test]
    fn transport_axis_expands_between_protocol_and_faults() {
        use crate::transport::{LatencyModel, TransportSpec};
        let net = TransportSpec::default();
        let sweep = two_axis_sweep().with_transport_axis(vec![None, Some(net)]);
        assert_eq!(sweep.cell_count(), 2 * 2 * 2);
        let cells = sweep.expand();
        // transport sits just inside protocol: per protocol, first all sizes
        // on the default engine, then all sizes on the net transport.
        assert_eq!(cells[0].spec.transport, None);
        assert_eq!(cells[1].spec.transport, None);
        assert_eq!(cells[2].spec.transport, Some(net));
        assert_eq!(cells[3].spec.transport, Some(net));
        assert_eq!(cells[3].spec.protocol.name, "pairwise");
        assert_eq!(cells[4].spec.protocol.name, "geographic");
        // The default singleton axis leaves historical cells untouched.
        let plain = two_axis_sweep().expand();
        let defaulted = two_axis_sweep().with_transport_axis(vec![None]).expand();
        assert_eq!(plain, defaulted);

        // JSON round trip, including the null = shared-memory spelling.
        let rich = two_axis_sweep().with_transport_axis(vec![
            None,
            Some(TransportSpec::default()),
            Some(TransportSpec::with_latency(LatencyModel::Exponential {
                mean: 0.25,
            })),
        ]);
        let json = rich.to_json();
        assert!(json.contains("\"transport\""));
        let parsed = SweepSpec::from_json(&json).expect("transport sweep parses");
        assert_eq!(parsed, rich);
        assert_eq!(parsed.to_json(), json, "fixed point with a transport axis");
        let plain_json = two_axis_sweep().to_json();
        assert!(!plain_json.contains("transport"));

        // Bad transport entries are rejected with the axis discipline.
        let err = SweepSpec::from_json(
            r#"{"sweep": "s", "axes": {"n": [64], "protocol": [{"name": "pairwise"}], "transport": [{"latency": "warp"}]}}"#,
        )
        .expect_err("unknown latency model");
        assert!(err.to_string().contains("transport.latency"), "got `{err}`");
    }

    #[test]
    fn sweep_documents_are_distinguishable_from_scenarios() {
        let sweep_doc = JsonValue::parse(&two_axis_sweep().to_json()).unwrap();
        assert!(SweepSpec::is_sweep_document(&sweep_doc));
        let scenario_doc =
            JsonValue::parse(&ScenarioSpec::standard("pairwise", 64, 0.1).to_json()).unwrap();
        assert!(!SweepSpec::is_sweep_document(&scenario_doc));
    }

    #[test]
    fn validation_rejects_empty_axes_and_zero_trials() {
        let mut sweep = two_axis_sweep();
        sweep.epsilons.clear();
        assert!(sweep.validate().is_err());
        let mut sweep = two_axis_sweep();
        sweep.trials = 0;
        assert!(sweep.validate().is_err());
        let mut sweep = two_axis_sweep();
        sweep.name.clear();
        assert!(sweep.validate().is_err());
        assert!(two_axis_sweep().validate().is_ok());
    }
}
