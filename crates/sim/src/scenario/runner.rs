//! The `Runner` facade: executes [`ScenarioSpec`]s against a protocol
//! factory, with rayon-parallel trials under the workspace's
//! determinism-under-rayon contract.

use crate::engine::{Activation, AsyncEngine};
use crate::error::ProtocolError;
use crate::fault::{FaultyActivation, FAULT_STREAM_LABEL};
use crate::rng::SeedStream;
use crate::scenario::report::{ScenarioReport, TrialCost};
use crate::scenario::spec::{ProtocolSpec, ScenarioSpec};
use crate::transport::{TransportRuntime, NET_STREAM_LABEL};
use geogossip_graph::GeometricGraph;
use geogossip_telemetry::{Event, EventBuffer, PhaseTimer, Probe};
use rand::RngCore;
use rayon::prelude::*;

/// Resolves protocol names from a [`ScenarioSpec`] into runnable
/// [`Activation`] instances.
///
/// The canonical implementation is `geogossip_core::registry::ProtocolRegistry`
/// (the trait lives here, below the protocol crate, so the scenario layer
/// stays protocol-agnostic and new protocols plug in without touching the
/// runner).
pub trait ProtocolFactory: Send + Sync {
    /// The names this factory resolves, in presentation order.
    fn names(&self) -> Vec<String>;

    /// The seed tag mixed into the per-trial run stream for `name`
    /// (`seeds.trial("run", trial ^ (tag << 32))`), or `None` for unknown
    /// names. Distinct tags keep different protocols on the same instance
    /// statistically independent; the built-in tags reproduce the historical
    /// per-protocol streams bit-for-bit.
    fn seed_tag(&self, name: &str) -> Option<u64>;

    /// Builds a protocol instance over `graph` with the given initial values.
    ///
    /// `epsilon` is the scenario's stop target (round-based protocols derive
    /// their internal accuracy cascade from it); `rng` is the trial's run
    /// stream — builders that need randomness (random coefficients, rejection
    /// sampling) draw from it, others must leave it untouched.
    fn build<'a>(
        &self,
        spec: &ProtocolSpec,
        graph: &'a GeometricGraph,
        values: Vec<f64>,
        epsilon: f64,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn Activation + 'a>, ProtocolError>;
}

/// Executes scenarios: builds the per-trial network, field and protocol, and
/// drives the engine — in parallel across trials and scenarios.
///
/// # Determinism
///
/// Results are **bit-identical** to a sequential loop: every trial derives
/// all of its RNG streams from `(spec.seed, trial index)` via
/// [`SeedStream::trial`] and shares nothing, and the vendored rayon stand-in
/// preserves input order on collect. The run stream additionally mixes in the
/// protocol's seed tag, so different protocols compared on the same topology
/// see the same networks and fields but independent run randomness — exactly
/// the historical `run_protocol` contract.
pub struct Runner {
    factory: Box<dyn ProtocolFactory>,
    transport: Option<Box<dyn TransportRuntime>>,
}

impl Runner {
    /// Creates a runner over the given protocol factory. Specs carrying a
    /// `transport` key are rejected until a message-passing runtime is
    /// attached with [`Runner::with_transport`].
    pub fn new(factory: Box<dyn ProtocolFactory>) -> Self {
        Runner {
            factory,
            transport: None,
        }
    }

    /// Attaches a message-passing runtime (builder style), enabling specs
    /// with a `transport` key. The canonical wiring is
    /// `geogossip::builtin_runner()`, which pairs the built-in protocol
    /// registry with `geogossip_net::NetRuntime`.
    pub fn with_transport(mut self, runtime: Box<dyn TransportRuntime>) -> Self {
        self.transport = Some(runtime);
        self
    }

    /// The factory backing this runner (for listing protocols).
    pub fn factory(&self) -> &dyn ProtocolFactory {
        &*self.factory
    }

    /// Runs one scenario, parallelising its trials across cores.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, ProtocolError> {
        spec.validate()?;
        let tag = self.resolve_tag(spec)?;
        let outcomes: Vec<Result<(TrialCost, String), ProtocolError>> = (0..spec.trials)
            .into_par_iter()
            .map(|trial| self.run_trial(spec, tag, trial, None))
            .collect();
        let mut label = spec.protocol.name.clone();
        let mut trials = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            let (cost, trial_label) = outcome?;
            label = trial_label;
            trials.push(cost);
        }
        Ok(ScenarioReport::new(spec.clone(), label, trials))
    }

    /// Runs several scenarios as one parallel workload.
    ///
    /// The flattened grid is **trial-major** (`(s₀,t₀), (s₁,t₀), …, (s₀,t₁),
    /// …`) so that workers splitting it into contiguous chunks each receive a
    /// mix of scenarios — laying it out scenario-major would park every
    /// expensive largest-`n` trial in the same trailing chunk and serialise
    /// them on one core. Results are reassembled by index, so the reports are
    /// identical to calling [`Runner::run`] per spec.
    pub fn run_all(&self, specs: &[ScenarioSpec]) -> Result<Vec<ScenarioReport>, ProtocolError> {
        let mut tags = Vec::with_capacity(specs.len());
        for spec in specs {
            spec.validate()?;
            tags.push(self.resolve_tag(spec)?);
        }
        let max_trials = specs.iter().map(|s| s.trials).max().unwrap_or(0);
        let grid: Vec<(usize, u64)> = (0..max_trials)
            .flat_map(|t| {
                specs
                    .iter()
                    .enumerate()
                    .filter(move |(_, s)| t < s.trials)
                    .map(move |(i, _)| (i, t))
            })
            .collect();
        let flat: Vec<Result<(TrialCost, String), ProtocolError>> = grid
            .clone()
            .into_par_iter()
            .map(|(i, trial)| self.run_trial(&specs[i], tags[i], trial, None))
            .collect();

        // Reassemble per scenario in trial order.
        let mut per_spec: Vec<Vec<(TrialCost, String)>> = specs
            .iter()
            .map(|s| Vec::with_capacity(s.trials as usize))
            .collect();
        for ((i, _trial), outcome) in grid.into_iter().zip(flat) {
            per_spec[i].push(outcome?);
        }
        Ok(specs
            .iter()
            .zip(per_spec)
            .map(|(spec, outcomes)| {
                let label = outcomes
                    .last()
                    .map(|(_, l)| l.clone())
                    .unwrap_or_else(|| spec.protocol.name.clone());
                let trials = outcomes.into_iter().map(|(c, _)| c).collect();
                ScenarioReport::new(spec.clone(), label, trials)
            })
            .collect())
    }

    /// Runs one scenario with a telemetry probe attached.
    ///
    /// Trials still execute in parallel; each one records into a private
    /// [`EventBuffer`] and the buffers are replayed into `probe` in trial
    /// order after the join, so the observed stream is byte-identical to a
    /// sequential run regardless of thread count. The report is identical to
    /// [`Runner::run`]'s — events observe the simulation, never steer it.
    pub fn run_probed(
        &self,
        spec: &ScenarioSpec,
        probe: &mut dyn Probe,
    ) -> Result<ScenarioReport, ProtocolError> {
        spec.validate()?;
        let tag = self.resolve_tag(spec)?;
        let outcomes: Vec<Result<(TrialCost, String, EventBuffer), ProtocolError>> = (0..spec
            .trials)
            .into_par_iter()
            .map(|trial| {
                let mut buffer = EventBuffer::new();
                self.run_trial(spec, tag, trial, Some(&mut buffer))
                    .map(|(cost, label)| (cost, label, buffer))
            })
            .collect();
        let mut label = spec.protocol.name.clone();
        let mut trials = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            let (cost, trial_label, buffer) = outcome?;
            label = trial_label;
            trials.push(cost);
            buffer.replay(probe);
        }
        Ok(ScenarioReport::new(spec.clone(), label, trials))
    }

    fn resolve_tag(&self, spec: &ScenarioSpec) -> Result<u64, ProtocolError> {
        self.factory
            .seed_tag(&spec.protocol.name)
            .ok_or_else(|| ProtocolError::UnknownProtocol {
                name: spec.protocol.name.clone(),
            })
    }

    /// One trial: placement → field → protocol → engine, every stream derived
    /// from `(spec.seed, trial)`. Wall-clock timings (whole trial and the
    /// `graph`/`field`/`build`/`engine` phase laps) ride along in the
    /// [`TrialCost`]; they are observability only and excluded from report
    /// equality.
    ///
    /// `probe = None` is the hot path: the engine monomorphizes over the
    /// zero-sized `NoProbe` and the trial is bit-identical to a probe-free
    /// build. A probed trial emits `TrialStarted` first and `TrialFinished`
    /// last, bracketing the engine's own stream.
    fn run_trial(
        &self,
        spec: &ScenarioSpec,
        tag: u64,
        trial: u64,
        mut probe: Option<&mut dyn Probe>,
    ) -> Result<(TrialCost, String), ProtocolError> {
        let trial_start = std::time::Instant::now();
        let mut timer = PhaseTimer::start();
        if let Some(probe) = probe.as_deref_mut() {
            probe.on_event(Event::TrialStarted {
                scenario: spec.name.clone(),
                trial,
            });
        }
        let seeds = SeedStream::new(spec.seed);
        let graph = spec.topology.build(&seeds, trial);
        timer.lap("graph");
        let values = spec.field.values(&graph, &mut seeds.trial("values", trial));
        timer.lap("field");
        let mut rng = seeds.trial("run", trial ^ (tag << 32));
        if let Some(transport) = &spec.transport {
            // The message-passing transport replaces the factory/engine path
            // wholesale. Its protocol builders consume the run stream exactly
            // as the factory's would, all latency/wire-reliability randomness
            // comes from the dedicated net stream, and node-fault (stale set,
            // churn schedule) construction draws come from the dedicated
            // fault stream — so the default-transport path below stays
            // byte-identical whether or not a runtime is attached. The
            // incoherent overlap (activation loss + transport) is rejected by
            // `ScenarioSpec::validate` before any trial starts.
            let runtime = self.transport.as_deref().ok_or_else(|| {
                ProtocolError::invalid(
                    "transport",
                    "this runner has no message-passing runtime attached \
                     (use `geogossip::builtin_runner()`)",
                )
            })?;
            let mut net_rng = seeds.trial(NET_STREAM_LABEL, trial);
            let fault_rng = seeds.trial(FAULT_STREAM_LABEL, trial);
            // The runtime builds its own protocol actors inside the run, so
            // the `build` lap is ≈0 here and the `engine` lap covers the
            // whole scheduler run — matching `engine_seconds`.
            timer.lap("build");
            let outcome = runtime.run_trial(
                &spec.protocol,
                transport,
                &spec.faults,
                &graph,
                values,
                spec.stop,
                &mut rng,
                &mut net_rng,
                fault_rng,
                probe.as_deref_mut(),
            )?;
            let engine_seconds = timer.lap("engine");
            let report = outcome.report;
            if let Some(probe) = probe.as_deref_mut() {
                probe.on_event(Event::TrialFinished {
                    scenario: spec.name.clone(),
                    trial,
                    reason: report.reason.token().to_string(),
                    ticks: report.ticks,
                    transmissions: report.transmissions.total(),
                });
            }
            let cost = TrialCost {
                converged: report.converged(),
                transmissions: report.transmissions,
                rounds: outcome.rounds.unwrap_or(report.ticks),
                ticks: report.ticks,
                final_error: report.final_error,
                metrics: outcome.metrics,
                trace: report.trace,
                seconds: trial_start.elapsed().as_secs_f64(),
                engine_seconds,
                phases: timer.into_laps(),
            };
            return Ok((cost, outcome.label));
        }
        let mut protocol =
            self.factory
                .build(&spec.protocol, &graph, values, spec.stop.epsilon, &mut rng)?;
        if !spec.faults.is_none() {
            // Fault injection wraps the protocol only when the spec asks for
            // it; the fault stream is dedicated, so the clock/run streams —
            // and therefore every no-fault trial — stay byte-identical.
            spec.faults
                .check_support(&spec.protocol.name, protocol.fault_support())?;
            protocol = Box::new(FaultyActivation::new(
                protocol,
                &spec.faults,
                graph.len(),
                seeds.trial(FAULT_STREAM_LABEL, trial),
            ));
        }
        timer.lap("build");
        // The parallel path engages only when the spec asks for it AND the
        // protocol exposes the batched interface; a fault-wrapped or
        // batch-unaware protocol falls through to the sequential loop, which
        // is bit-identical anyway (parallelism is an execution strategy,
        // never a semantics change). The probed and unprobed arms call
        // distinct monomorphizations of the same loop; their reports are
        // identical.
        let mut engine = AsyncEngine::new(graph.len());
        let report = match probe.as_deref_mut() {
            Some(probe) => match spec.parallelism {
                Some(par) => match protocol.as_batch() {
                    Some(batch) => {
                        engine.run_parallel_probed(batch, spec.stop, &mut rng, par, probe)
                    }
                    None => engine.run_probed(&mut *protocol, spec.stop, &mut rng, probe),
                },
                None => engine.run_probed(&mut *protocol, spec.stop, &mut rng, probe),
            },
            None => match spec.parallelism {
                Some(par) => match protocol.as_batch() {
                    Some(batch) => engine.run_parallel(batch, spec.stop, &mut rng, par),
                    None => engine.run(&mut *protocol, spec.stop, &mut rng),
                },
                None => engine.run(&mut *protocol, spec.stop, &mut rng),
            },
        };
        let engine_seconds = timer.lap("engine");
        if let Some(probe) = probe {
            probe.on_event(Event::TrialFinished {
                scenario: spec.name.clone(),
                trial,
                reason: report.reason.token().to_string(),
                ticks: report.ticks,
                transmissions: report.transmissions.total(),
            });
        }
        let label = protocol.name().to_string();
        let cost = TrialCost {
            converged: report.converged(),
            transmissions: report.transmissions,
            rounds: protocol.rounds().unwrap_or(report.ticks),
            ticks: report.ticks,
            final_error: report.final_error,
            metrics: protocol.metrics(),
            trace: report.trace,
            seconds: trial_start.elapsed().as_secs_f64(),
            engine_seconds,
            phases: timer.into_laps(),
        };
        Ok((cost, label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Tick;
    use crate::fault::{ChurnEvent, FaultContext, FaultSpec, FaultSupport};
    use crate::metrics::TransmissionCounter;
    use rand::Rng;

    /// A stand-in protocol for runner tests: converges once the accumulated
    /// random drift crosses a threshold, so the outcome depends on every RNG
    /// stream the runner derives.
    struct DriftProtocol {
        error: f64,
        fingerprint: f64,
    }

    impl Activation for DriftProtocol {
        fn on_tick(&mut self, _tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
            tx.charge_local(1);
            self.error *= 0.9 + 0.05 * rng.gen::<f64>();
        }
        fn fault_support(&self) -> FaultSupport {
            FaultSupport::loss_and_stale()
        }
        fn on_tick_faulty(
            &mut self,
            _tick: Tick,
            tx: &mut TransmissionCounter,
            rng: &mut dyn RngCore,
            faults: &FaultContext<'_>,
        ) {
            tx.charge_local(1);
            let step = 0.9 + 0.05 * rng.gen::<f64>();
            if !faults.dropped {
                self.error *= step;
            }
        }
        fn relative_error(&self) -> f64 {
            self.error
        }
        fn name(&self) -> &str {
            "drift"
        }
        fn metrics(&self) -> Vec<(String, f64)> {
            vec![("fingerprint".into(), self.fingerprint)]
        }
    }

    struct DriftFactory;

    impl ProtocolFactory for DriftFactory {
        fn names(&self) -> Vec<String> {
            vec!["drift".into()]
        }
        fn seed_tag(&self, name: &str) -> Option<u64> {
            (name == "drift").then_some(11)
        }
        fn build<'a>(
            &self,
            spec: &ProtocolSpec,
            _graph: &'a GeometricGraph,
            values: Vec<f64>,
            _epsilon: f64,
            _rng: &mut dyn RngCore,
        ) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
            spec.reject_unknown(&[])?;
            Ok(Box::new(DriftProtocol {
                error: 1.0,
                fingerprint: values.iter().sum(),
            }))
        }
    }

    fn spec(trials: u64, seed: u64) -> ScenarioSpec {
        ScenarioSpec::standard("drift", 32, 0.05)
            .with_trials(trials)
            .with_seed(seed)
    }

    #[test]
    fn runs_are_deterministic_and_trial_streams_differ() {
        let runner = Runner::new(Box::new(DriftFactory));
        let a = runner.run(&spec(3, 5)).unwrap();
        let b = runner.run(&spec(3, 5)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.trials.len(), 3);
        assert!(a.all_converged());
        // Different trials see different randomness.
        assert_ne!(a.trials[0].ticks, a.trials[1].ticks);
        // Different seeds change the outcome.
        let c = runner.run(&spec(3, 6)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn run_all_matches_individual_runs() {
        let runner = Runner::new(Box::new(DriftFactory));
        let specs = vec![spec(2, 5), spec(3, 7)];
        let batch = runner.run_all(&specs).unwrap();
        let individual: Vec<ScenarioReport> =
            specs.iter().map(|s| runner.run(s).unwrap()).collect();
        assert_eq!(batch, individual);
    }

    #[test]
    fn unknown_protocols_are_rejected_by_name() {
        let runner = Runner::new(Box::new(DriftFactory));
        let bad = ScenarioSpec::standard("no-such-protocol", 32, 0.1);
        assert!(matches!(
            runner.run(&bad),
            Err(ProtocolError::UnknownProtocol { name }) if name == "no-such-protocol"
        ));
    }

    #[test]
    fn invalid_specs_are_rejected_before_any_work() {
        let runner = Runner::new(Box::new(DriftFactory));
        let bad = ScenarioSpec::standard("drift", 32, -0.5);
        assert!(matches!(
            runner.run(&bad),
            Err(ProtocolError::InvalidParameter { name, .. }) if name == "epsilon"
        ));
    }

    #[test]
    fn drops_inflate_cost_and_are_counted() {
        let runner = Runner::new(Box::new(DriftFactory));
        let plain = runner.run(&spec(2, 5)).unwrap();
        let lossy = runner
            .run(&spec(2, 5).with_faults(FaultSpec {
                drop_rate: 0.5,
                ..FaultSpec::default()
            }))
            .unwrap();
        assert!(lossy.all_converged());
        for (p, l) in plain.trials.iter().zip(&lossy.trials) {
            // Every dropped activation is cost without progress.
            assert!(l.ticks > p.ticks, "drops must slow convergence");
            let dropped = l
                .metrics
                .iter()
                .find(|(k, _)| k == "dropped_activations")
                .expect("fault metrics ride along")
                .1;
            assert!(dropped > 0.0);
        }
        // The no-fault run carries no fault metrics at all.
        assert!(plain.trials[0]
            .metrics
            .iter()
            .all(|(k, _)| k != "dropped_activations"));
    }

    #[test]
    fn unsupported_fault_kinds_are_rejected_before_the_engine_runs() {
        let runner = Runner::new(Box::new(DriftFactory));
        let churny = spec(1, 5).with_faults(FaultSpec {
            churn: vec![ChurnEvent {
                fraction: 0.25,
                at_tick: 10,
                rejoin_tick: None,
            }],
            ..FaultSpec::default()
        });
        let err = runner.run(&churny).expect_err("drift cannot churn");
        assert!(err.to_string().contains("churn"), "got `{err}`");
    }

    #[test]
    fn transport_specs_need_an_attached_runtime() {
        let runner = Runner::new(Box::new(DriftFactory));
        let netted = spec(1, 5).with_transport(crate::transport::TransportSpec::default());
        let err = runner.run(&netted).expect_err("no runtime attached");
        assert!(matches!(
            &err,
            ProtocolError::InvalidParameter { name, .. } if name == "transport"
        ));
        assert!(err.to_string().contains("runtime"), "got `{err}`");
    }

    #[test]
    fn transport_plus_activation_loss_is_rejected_with_the_spec_path() {
        // Wire-level loss lives in `transport.reliability.drop`; activation
        // loss riding along would double-model the lossy medium, so the
        // overlap is rejected at validation with the `faults` path named.
        let runner = Runner::new(Box::new(DriftFactory));
        let both = spec(1, 5)
            .with_faults(FaultSpec {
                drop_rate: 0.5,
                ..FaultSpec::default()
            })
            .with_transport(crate::transport::TransportSpec::default());
        let err = runner.run(&both).expect_err("loss + transport");
        assert!(matches!(
            &err,
            ProtocolError::InvalidParameter { name, .. } if name == "faults.drop-rate"
        ));
        assert!(err.to_string().contains("reliability"), "got `{err}`");
    }

    #[test]
    fn transport_plus_stale_faults_passes_validation() {
        // Node-level faults (stale, churn) are coherent with a transport; on
        // this runtime-less runner the spec must sail past validation and
        // fail only on the missing runtime.
        let runner = Runner::new(Box::new(DriftFactory));
        let both = spec(1, 5)
            .with_faults(FaultSpec {
                stale_fraction: 0.1,
                ..FaultSpec::default()
            })
            .with_transport(crate::transport::TransportSpec::default());
        let err = runner.run(&both).expect_err("no runtime attached");
        assert!(matches!(
            &err,
            ProtocolError::InvalidParameter { name, .. } if name == "transport"
        ));
        assert!(err.to_string().contains("runtime"), "got `{err}`");
    }

    #[test]
    fn unknown_params_fail_loudly() {
        let runner = Runner::new(Box::new(DriftFactory));
        let mut s = spec(1, 5);
        s.protocol = ProtocolSpec::named("drift").with_number("typo", 1.0);
        assert!(matches!(
            runner.run(&s),
            Err(ProtocolError::InvalidParameter { name, .. }) if name == "typo"
        ));
    }
}
