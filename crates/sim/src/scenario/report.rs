//! Structured results of a scenario run: per-trial costs plus summary
//! statistics, serializable to JSON and renderable as a table.

use crate::metrics::{ConvergenceTrace, TransmissionCounter};
use crate::scenario::spec::ScenarioSpec;
use geogossip_analysis::json::JsonValue;
use geogossip_analysis::{Summary, Table};
use serde::{Deserialize, Serialize};

/// The cost outcome of one trial, reduced to the quantities the experiment
/// tables report (plus the trace and protocol metrics for the experiments
/// that need more).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialCost {
    /// Whether the accuracy target was reached.
    pub converged: bool,
    /// Transmission counters (routing / local / control).
    pub transmissions: TransmissionCounter,
    /// "Rounds": the protocol's own round counter when it has one (top-level
    /// rounds for the round-based affine protocol), engine ticks otherwise.
    pub rounds: u64,
    /// Engine ticks consumed (equals `rounds` for tick-driven protocols).
    pub ticks: u64,
    /// Final relative ℓ₂ error.
    pub final_error: f64,
    /// Protocol-specific numeric outcomes (`Activation::metrics`).
    pub metrics: Vec<(String, f64)>,
    /// Error-vs-cost trace of the trial (not serialized into report JSON;
    /// experiments read it in-process).
    pub trace: ConvergenceTrace,
    /// Wall-clock seconds of the whole trial (placement + graph build +
    /// field + protocol construction + engine run). Timing, not semantics —
    /// excluded from equality.
    pub seconds: f64,
    /// Wall-clock seconds of the engine run alone; `ticks / engine_seconds`
    /// is the trial's tick throughput.
    pub engine_seconds: f64,
    /// Wall-clock phase laps of the trial, in execution order (`graph`,
    /// `field`, `build`, `engine`), from the telemetry `PhaseTimer`. Like
    /// `seconds`/`engine_seconds` this is timing, not semantics: excluded
    /// from equality and from report JSON (the telemetry sinks aggregate
    /// phases into their own log-bucketed CSV instead).
    pub phases: Vec<(&'static str, f64)>,
}

impl TrialCost {
    /// Looks up a protocol metric by key.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Semantic equality: two trial outcomes are equal when the *simulation
/// results* match; wall-clock timings vary run to run and are excluded (the
/// determinism contract is about results, not machine speed).
impl PartialEq for TrialCost {
    fn eq(&self, other: &Self) -> bool {
        self.converged == other.converged
            && self.transmissions == other.transmissions
            && self.rounds == other.rounds
            && self.ticks == other.ticks
            && self.final_error == other.final_error
            && self.metrics == other.metrics
            && self.trace == other.trace
    }
}

/// Aggregate statistics over a scenario's trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSummary {
    /// Trials that reached the accuracy target.
    pub converged_trials: u64,
    /// Total trials.
    pub trials: u64,
    /// Mean transmissions across trials.
    pub mean_transmissions: f64,
    /// Smallest per-trial transmission total.
    pub min_transmissions: u64,
    /// Largest per-trial transmission total.
    pub max_transmissions: u64,
    /// Mean protocol rounds across trials.
    pub mean_rounds: f64,
    /// Mean final relative error across trials.
    pub mean_final_error: f64,
}

/// The structured result of running one [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The spec that produced this report (self-describing output).
    pub spec: ScenarioSpec,
    /// Protocol display name as reported by the running instance.
    pub protocol_label: String,
    /// Per-trial outcomes, ordered by trial index.
    pub trials: Vec<TrialCost>,
    /// Aggregate statistics.
    pub summary: ScenarioSummary,
}

impl ScenarioReport {
    /// Assembles a report, computing the summary from the trial costs.
    pub fn new(spec: ScenarioSpec, protocol_label: String, trials: Vec<TrialCost>) -> Self {
        let mut tx = Summary::new();
        let mut rounds = Summary::new();
        let mut error = Summary::new();
        let mut converged = 0u64;
        for trial in &trials {
            tx.push(trial.transmissions.total() as f64);
            rounds.push(trial.rounds as f64);
            error.push(trial.final_error);
            if trial.converged {
                converged += 1;
            }
        }
        let summary = ScenarioSummary {
            converged_trials: converged,
            trials: trials.len() as u64,
            mean_transmissions: tx.mean(),
            min_transmissions: if trials.is_empty() {
                0
            } else {
                tx.min() as u64
            },
            max_transmissions: if trials.is_empty() {
                0
            } else {
                tx.max() as u64
            },
            mean_rounds: rounds.mean(),
            mean_final_error: error.mean(),
        };
        ScenarioReport {
            spec,
            protocol_label,
            trials,
            summary,
        }
    }

    /// Whether every trial converged.
    pub fn all_converged(&self) -> bool {
        self.summary.converged_trials == self.summary.trials
    }

    /// Wall-clock seconds **summed over trials** (whole trials: build + run).
    ///
    /// Trials run in parallel across cores, so this is aggregate compute
    /// time, not elapsed time — it can exceed the real wall clock by up to
    /// the core count when `trials > 1` (it equals elapsed time for
    /// single-trial scenarios such as the `large_n.json` members).
    pub fn total_seconds(&self) -> f64 {
        self.trials.iter().map(|t| t.seconds).sum()
    }

    /// Total engine ticks across trials.
    pub fn total_ticks(&self) -> u64 {
        self.trials.iter().map(|t| t.ticks).sum()
    }

    /// Wall-clock seconds summed per phase across trials, in first-seen
    /// phase order — the source of the CLI's single `timing:` line. Like
    /// [`ScenarioReport::total_seconds`], a sum of parallel trials (aggregate
    /// compute time, not elapsed time).
    pub fn phase_totals(&self) -> Vec<(&'static str, f64)> {
        let mut totals: Vec<(&'static str, f64)> = Vec::new();
        for trial in &self.trials {
            for (phase, seconds) in &trial.phases {
                match totals.iter_mut().find(|(name, _)| name == phase) {
                    Some((_, sum)) => *sum += seconds,
                    None => totals.push((phase, *seconds)),
                }
            }
        }
        totals
    }

    /// Per-trial engine tick throughput: total ticks over summed engine
    /// seconds, or `None` when no engine time was recorded (e.g. synthetic
    /// reports). Because the denominator sums across parallel trials, this
    /// is the rate of a single engine loop (per core), not the machine-wide
    /// aggregate. This is the number the CLI's per-scenario summary line
    /// prints, straight off the trial reports.
    pub fn ticks_per_second(&self) -> Option<f64> {
        let engine_seconds: f64 = self.trials.iter().map(|t| t.engine_seconds).sum();
        (engine_seconds > 0.0).then(|| self.total_ticks() as f64 / engine_seconds)
    }

    /// Serialises the report (spec echo, per-trial costs, summary) to the
    /// JSON document model. Traces are omitted — they can run to millions of
    /// points; experiments that need them read [`TrialCost::trace`]
    /// in-process.
    pub fn to_json_value(&self) -> JsonValue {
        let trials = self
            .trials
            .iter()
            .map(|t| {
                let mut entries = vec![
                    ("converged", JsonValue::Bool(t.converged)),
                    ("transmissions", t.transmissions.total().into()),
                    ("routing", t.transmissions.routing().into()),
                    ("local", t.transmissions.local().into()),
                    ("control", t.transmissions.control().into()),
                    ("rounds", t.rounds.into()),
                    ("ticks", t.ticks.into()),
                    ("final-error", t.final_error.into()),
                    ("seconds", t.seconds.into()),
                    ("engine-seconds", t.engine_seconds.into()),
                ];
                if !t.metrics.is_empty() {
                    entries.push((
                        "metrics",
                        JsonValue::Object(
                            t.metrics
                                .iter()
                                .map(|(k, v)| (k.clone(), JsonValue::Number(*v)))
                                .collect(),
                        ),
                    ));
                }
                JsonValue::object(entries)
            })
            .collect();
        JsonValue::object(vec![
            ("spec", self.spec.to_json_value()),
            (
                "protocol-label",
                JsonValue::string(self.protocol_label.clone()),
            ),
            ("trials", JsonValue::Array(trials)),
            (
                "summary",
                JsonValue::object(vec![
                    ("converged-trials", self.summary.converged_trials.into()),
                    ("trials", self.summary.trials.into()),
                    ("mean-transmissions", self.summary.mean_transmissions.into()),
                    ("min-transmissions", self.summary.min_transmissions.into()),
                    ("max-transmissions", self.summary.max_transmissions.into()),
                    ("mean-rounds", self.summary.mean_rounds.into()),
                    ("mean-final-error", self.summary.mean_final_error.into()),
                ]),
            ),
        ])
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }
}

/// Renders a set of reports as one comparison table (one row per scenario),
/// the shape every experiment and the CLI print.
pub fn reports_table(reports: &[ScenarioReport]) -> Table {
    let mut table = Table::new(vec![
        "scenario",
        "protocol",
        "n",
        "ε",
        "converged",
        "mean tx",
        "mean rounds",
        "mean final error",
    ]);
    for report in reports {
        table.add_row(vec![
            report.spec.name.clone(),
            report.protocol_label.clone(),
            report.spec.topology.n.to_string(),
            format!("{}", report.spec.stop.epsilon),
            format!(
                "{}/{}",
                report.summary.converged_trials, report.summary.trials
            ),
            format!("{:.0}", report.summary.mean_transmissions),
            format!("{:.0}", report.summary.mean_rounds),
            format!("{:.3e}", report.summary.mean_final_error),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(converged: bool, tx: u64, rounds: u64, err: f64) -> TrialCost {
        let mut counter = TransmissionCounter::new();
        counter.charge_local(tx);
        TrialCost {
            converged,
            transmissions: counter,
            rounds,
            ticks: rounds,
            final_error: err,
            metrics: vec![("exchanges".into(), rounds as f64)],
            trace: ConvergenceTrace::new(),
            seconds: 0.25,
            engine_seconds: 0.2,
            phases: vec![("graph", 0.05), ("engine", 0.2)],
        }
    }

    #[test]
    fn summary_aggregates_trials() {
        let spec = ScenarioSpec::standard("pairwise", 64, 0.1);
        let report = ScenarioReport::new(
            spec,
            "pairwise".into(),
            vec![cost(true, 100, 10, 0.05), cost(false, 300, 30, 0.2)],
        );
        assert_eq!(report.summary.trials, 2);
        assert_eq!(report.summary.converged_trials, 1);
        assert!(!report.all_converged());
        assert_eq!(report.summary.mean_transmissions, 200.0);
        assert_eq!(report.summary.min_transmissions, 100);
        assert_eq!(report.summary.max_transmissions, 300);
        assert_eq!(report.summary.mean_rounds, 20.0);
        assert_eq!(report.trials[0].metric("exchanges"), Some(10.0));
        assert_eq!(report.trials[0].metric("nope"), None);
        assert!((report.total_seconds() - 0.5).abs() < 1e-12);
        assert_eq!(report.total_ticks(), 40);
        let tps = report.ticks_per_second().unwrap();
        assert!((tps - 100.0).abs() < 1e-9, "got {tps}");
    }

    #[test]
    fn trial_equality_ignores_wall_clock_timings() {
        let mut a = cost(true, 100, 10, 0.05);
        let mut b = a.clone();
        b.seconds = 99.0;
        b.engine_seconds = 98.0;
        assert_eq!(a, b);
        a.ticks += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn report_json_contains_summary_and_trials_but_no_trace() {
        let spec = ScenarioSpec::standard("pairwise", 64, 0.1);
        let report = ScenarioReport::new(spec, "pairwise".into(), vec![cost(true, 100, 10, 0.05)]);
        let json = report.to_json();
        assert!(json.contains("\"mean-transmissions\""));
        assert!(json.contains("\"metrics\""));
        assert!(!json.contains("trace"));
        // The document parses back.
        assert!(JsonValue::parse(&json).is_ok());
    }

    #[test]
    fn table_has_one_row_per_report() {
        let spec = ScenarioSpec::standard("pairwise", 64, 0.1);
        let report = ScenarioReport::new(spec, "pairwise".into(), vec![cost(true, 10, 1, 0.01)]);
        let table = reports_table(&[report.clone(), report]);
        assert_eq!(table.len(), 2);
        assert!(table.to_markdown().contains("pairwise"));
    }
}
