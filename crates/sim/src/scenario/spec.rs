//! The declarative scenario description: topology × field × protocol × stop
//! condition × trials, with hand-rendered JSON serde (the workspace's vendored
//! `serde` is a marker stand-in; see `geogossip_analysis::json`).

use crate::batch::{ParallelSpec, DEFAULT_TICK_BATCH};
use crate::error::ProtocolError;
use crate::fault::FaultSpec;
use crate::field::Field;
use crate::rng::SeedStream;
use crate::transport::TransportSpec;
use crate::StopCondition;
use geogossip_analysis::json::JsonValue;
use geogossip_geometry::sampling::{sample_clustered, sample_perforated, sample_unit_square};
use geogossip_geometry::{Point, Rect, Topology};
use geogossip_graph::GeometricGraph;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The radius constant every standard scenario uses: `r = 1.5·√(log n/n)`,
/// just above the Gupta–Kumar connectivity threshold, as in the paper's
/// `r = Θ(√(log n/n))` regime. A larger constant makes the graph needlessly
/// dense and blurs the local-vs-long-range distinction the comparison is
/// about.
pub const STANDARD_RADIUS_CONSTANT: f64 = 1.5;

/// Default tick budget of standard scenarios (generous enough for the slowest
/// baseline at the largest experiment size).
pub const STANDARD_MAX_TICKS: u64 = 200_000_000;

/// Default master seed (the standard seed of the experiment suite).
pub const STANDARD_SEED: u64 = 20_070_612;

/// How the sensors are placed in the unit square.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementSpec {
    /// Independently and uniformly at random — the paper's model.
    UniformSquare,
    /// Clustered around `clusters` uniformly placed centers, each sensor a
    /// uniform offset within `±spread` of its center.
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
        /// Half-width of the per-cluster offset box.
        spread: f64,
    },
    /// Uniform over the unit square minus a rectangular hole (an obstacle).
    Perforated {
        /// The excluded rectangle.
        hole: Rect,
    },
}

impl PlacementSpec {
    /// Samples `n` positions according to this placement.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Point> {
        match *self {
            PlacementSpec::UniformSquare => sample_unit_square(n, rng),
            PlacementSpec::Clustered { clusters, spread } => {
                sample_clustered(n, clusters, spread, rng)
            }
            PlacementSpec::Perforated { hole } => sample_perforated(n, hole, rng),
        }
    }

    fn validate(&self) -> Result<(), ProtocolError> {
        match *self {
            PlacementSpec::UniformSquare => Ok(()),
            PlacementSpec::Clustered { clusters, spread } => {
                if clusters == 0 {
                    return Err(ProtocolError::invalid(
                        "placement.clusters",
                        "need at least one cluster",
                    ));
                }
                if !spread.is_finite() || spread <= 0.0 {
                    return Err(ProtocolError::invalid(
                        "placement.spread",
                        "must be strictly positive and finite",
                    ));
                }
                Ok(())
            }
            PlacementSpec::Perforated { hole } => {
                // Only the overlap with the unit square matters: a hole
                // sticking out of the square still leaves plenty to sample.
                if hole.intersection_area(geogossip_geometry::unit_square()) >= 0.99 {
                    return Err(ProtocolError::invalid(
                        "placement.hole",
                        "hole covers (almost) the whole unit square",
                    ));
                }
                Ok(())
            }
        }
    }
}

/// How the connectivity radius is chosen for a given network size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RadiusSpec {
    /// The standard regime `r = c·√(log n/n)` (Gupta–Kumar constant `c`).
    ConnectivityConstant(f64),
    /// A fixed radius independent of `n`.
    Absolute(f64),
}

impl RadiusSpec {
    /// The concrete radius for a network of `n` sensors.
    pub fn radius(&self, n: usize) -> f64 {
        match *self {
            RadiusSpec::ConnectivityConstant(c) => geogossip_geometry::connectivity_radius(n, c),
            RadiusSpec::Absolute(r) => r,
        }
    }

    fn validate(&self) -> Result<(), ProtocolError> {
        let (name, value) = match *self {
            RadiusSpec::ConnectivityConstant(c) => ("radius.connectivity-constant", c),
            RadiusSpec::Absolute(r) => ("radius.absolute", r),
        };
        if !value.is_finite() || value <= 0.0 {
            return Err(ProtocolError::invalid(
                name,
                "must be strictly positive and finite",
            ));
        }
        Ok(())
    }
}

/// The network model of a scenario: size, placement, radius regime, and
/// surface topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of sensors.
    pub n: usize,
    /// Placement of the sensors in the unit square.
    pub placement: PlacementSpec,
    /// Radius regime.
    pub radius: RadiusSpec,
    /// Surface the radio metric lives on.
    pub surface: Topology,
}

impl TopologySpec {
    /// The standard experiment network: `n` uniform sensors at
    /// `r = 1.5·√(log n/n)` on the plain unit square.
    pub fn standard(n: usize) -> Self {
        TopologySpec {
            n,
            placement: PlacementSpec::UniformSquare,
            radius: RadiusSpec::ConnectivityConstant(STANDARD_RADIUS_CONSTANT),
            surface: Topology::UnitSquare,
        }
    }

    /// Builds the network for one trial, deriving the placement stream from
    /// `(seeds, "placement", trial)` exactly as the experiment harness always
    /// has — specs with the same seed and trial index produce bit-identical
    /// networks regardless of which protocol runs on them.
    pub fn build(&self, seeds: &SeedStream, trial: u64) -> GeometricGraph {
        self.build_with_rng(&mut seeds.trial("placement", trial))
    }

    /// Builds the network from an explicit placement RNG.
    pub fn build_with_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> GeometricGraph {
        let positions = self.placement.sample(self.n, rng);
        GeometricGraph::build_with_topology(positions, self.radius.radius(self.n), self.surface)
    }

    /// Checks the topology parameters without building anything.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.n < 2 {
            return Err(ProtocolError::invalid(
                "topology.n",
                format!("need at least two sensors, got {}", self.n),
            ));
        }
        self.placement.validate()?;
        self.radius.validate()?;
        if self.surface == Topology::Torus && self.radius.radius(self.n) >= 0.5 {
            return Err(ProtocolError::invalid(
                "topology.radius",
                "torus adjacency requires a radius below 1/2",
            ));
        }
        Ok(())
    }
}

/// A single protocol parameter value (number, string, or flag).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// A numeric parameter.
    Number(f64),
    /// A textual parameter (e.g. a selector or rule name).
    Text(String),
    /// A boolean flag.
    Flag(bool),
}

/// Named protocol parameters, ordered for stable serialization.
pub type ParamMap = BTreeMap<String, ParamValue>;

/// Which protocol to run and how to configure it; the name resolves through
/// the protocol registry (`geogossip_core::registry`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolSpec {
    /// Registry name, e.g. `"pairwise"` or `"affine-idealized"`.
    pub name: String,
    /// Protocol-specific parameters; builders reject unknown keys.
    pub params: ParamMap,
}

impl ProtocolSpec {
    /// A protocol spec with no parameters.
    pub fn named(name: impl Into<String>) -> Self {
        ProtocolSpec {
            name: name.into(),
            params: ParamMap::new(),
        }
    }

    /// Adds a numeric parameter (builder style).
    pub fn with_number(mut self, key: &str, value: f64) -> Self {
        self.params
            .insert(key.to_string(), ParamValue::Number(value));
        self
    }

    /// Adds a textual parameter (builder style).
    pub fn with_text(mut self, key: &str, value: &str) -> Self {
        self.params
            .insert(key.to_string(), ParamValue::Text(value.to_string()));
        self
    }

    /// Reads a numeric parameter, with a default when absent.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidParameter`] when the key holds a non-number.
    pub fn number(&self, key: &str, default: f64) -> Result<f64, ProtocolError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(ParamValue::Number(v)) => Ok(*v),
            Some(other) => Err(ProtocolError::invalid(
                key,
                format!("expected a number, got {other:?}"),
            )),
        }
    }

    /// Reads a textual parameter, with a default when absent.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidParameter`] when the key holds a non-string.
    pub fn text(&self, key: &str, default: &str) -> Result<String, ProtocolError> {
        match self.params.get(key) {
            None => Ok(default.to_string()),
            Some(ParamValue::Text(s)) => Ok(s.clone()),
            Some(other) => Err(ProtocolError::invalid(
                key,
                format!("expected a string, got {other:?}"),
            )),
        }
    }

    /// Rejects parameters outside `known` — typos in a spec should fail
    /// loudly, not silently fall back to defaults.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), ProtocolError> {
        for key in self.params.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ProtocolError::invalid(
                    key.clone(),
                    format!(
                        "unknown parameter for protocol `{}` (known: {})",
                        self.name,
                        if known.is_empty() {
                            "none".to_string()
                        } else {
                            known.join(", ")
                        }
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// A complete, self-describing scenario: everything the [`Runner`] needs to
/// reproduce a comparison run bit-for-bit.
///
/// [`Runner`]: crate::scenario::Runner
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario label used in tables and file names.
    pub name: String,
    /// The network model.
    pub topology: TopologySpec,
    /// The initial measurement field.
    pub field: Field,
    /// The protocol and its parameters.
    pub protocol: ProtocolSpec,
    /// When a trial stops.
    pub stop: StopCondition,
    /// Fault injection model ([`FaultSpec::default`] = no faults; the
    /// `faults` key is optional in the JSON schema and omitted from the
    /// rendering when default, per the schema-stability invariant).
    pub faults: FaultSpec,
    /// Execution transport (`None` = shared-memory engine; `Some` = the
    /// message-passing runtime with the given latency model). The `transport`
    /// key is optional in the JSON schema and omitted from the rendering when
    /// absent, per the schema-stability invariant. Note that
    /// `Some(TransportSpec::default())` is *not* `None`: it runs the net
    /// layer on the instant schedule (bit-identical output, plus the message
    /// ledger metrics).
    pub transport: Option<TransportSpec>,
    /// Intra-trial parallelism (`None` = the sequential tick loop; `Some` =
    /// the batched parallel path, bit-identical by construction). The
    /// `parallelism` key is optional in the JSON schema and omitted from the
    /// rendering when absent, per the schema-stability invariant — and when
    /// the key is absent no partitioner or thread pool is ever engaged
    /// (the no-key-no-partitioner convention).
    pub parallelism: Option<ParallelSpec>,
    /// Number of independent trials (run in parallel, deterministically).
    pub trials: u64,
    /// Master seed; every per-trial stream derives from it.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The standard comparison scenario: uniform placement at the standard
    /// radius, east–west gradient field, generous budgets, one trial, the
    /// standard seed. This reproduces the historical `run_protocol` workload
    /// exactly.
    pub fn standard(protocol: &str, n: usize, epsilon: f64) -> Self {
        ScenarioSpec {
            name: format!("{protocol}-n{n}"),
            topology: TopologySpec::standard(n),
            field: Field::SpatialGradient,
            protocol: ProtocolSpec::named(protocol),
            stop: StopCondition::at_epsilon(epsilon).with_max_ticks(STANDARD_MAX_TICKS),
            faults: FaultSpec::default(),
            transport: None,
            parallelism: None,
            trials: 1,
            seed: STANDARD_SEED,
        }
    }

    /// Replaces the trial count (builder style).
    pub fn with_trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Replaces the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the field (builder style).
    pub fn with_field(mut self, field: Field) -> Self {
        self.field = field;
        self
    }

    /// Replaces the fault model (builder style).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the execution transport (builder style).
    pub fn with_transport(mut self, transport: TransportSpec) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Enables intra-trial parallelism (builder style).
    pub fn with_parallelism(mut self, parallelism: ParallelSpec) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Checks every parameter of the spec, returning the first violation.
    ///
    /// In particular the stop target must satisfy `epsilon > 0` and be
    /// finite — a silently never-converging scenario is rejected here rather
    /// than discovered after `10^8` ticks.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        self.topology.validate()?;
        self.stop.validate()?;
        self.faults.validate()?;
        if let Some(transport) = &self.transport {
            transport.validate()?;
            if self.faults.drop_rate > 0.0 {
                // Activation loss and the unreliable wire model the same
                // physical phenomenon; letting both ride would double-drop.
                // Node-level faults (stale, churn) stay coherent and combine.
                return Err(ProtocolError::invalid(
                    "faults.drop-rate",
                    "activation loss overlaps the message-passing transport: \
                     wire-level loss lives in `transport.reliability.drop`; \
                     keep node churn/stale in `faults`",
                ));
            }
        }
        if let Some(parallelism) = &self.parallelism {
            parallelism.validate()?;
            if self.transport.is_some() {
                return Err(ProtocolError::invalid(
                    "parallelism",
                    "intra-trial parallelism applies to the shared-memory engine \
                     and cannot be combined with a `transport`",
                ));
            }
        }
        if self.trials == 0 {
            return Err(ProtocolError::invalid("trials", "need at least one trial"));
        }
        if self.protocol.name.is_empty() {
            return Err(ProtocolError::invalid("protocol.name", "must be non-empty"));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // JSON serde (hand-rendered through `geogossip_analysis::json`).
    // ------------------------------------------------------------------

    /// Serialises the spec to its JSON document model. The `faults` key is
    /// emitted only when non-default, so pre-fault specs keep their
    /// historical byte-exact rendering.
    pub fn to_json_value(&self) -> JsonValue {
        let optional_cap = |cap: Option<u64>| cap.map_or(JsonValue::Null, JsonValue::from);
        let mut fields = vec![
            ("name", JsonValue::string(self.name.clone())),
            (
                "topology",
                JsonValue::object(vec![
                    ("n", self.topology.n.into()),
                    ("placement", placement_to_json(&self.topology.placement)),
                    ("radius", radius_to_json(&self.topology.radius)),
                    ("surface", JsonValue::string(self.topology.surface.token())),
                ]),
            ),
            ("field", JsonValue::string(self.field.token())),
            ("protocol", protocol_to_json(&self.protocol)),
            (
                "stop",
                JsonValue::object(vec![
                    ("epsilon", self.stop.epsilon.into()),
                    ("max-ticks", optional_cap(self.stop.max_ticks)),
                    (
                        "max-transmissions",
                        optional_cap(self.stop.max_transmissions),
                    ),
                ]),
            ),
        ];
        if !self.faults.is_none() {
            fields.push(("faults", self.faults.to_json_value()));
        }
        if let Some(transport) = &self.transport {
            fields.push(("transport", transport.to_json_value()));
        }
        if let Some(parallelism) = &self.parallelism {
            fields.push((
                "parallelism",
                JsonValue::object(vec![
                    ("threads", parallelism.threads.into()),
                    ("batch", parallelism.batch.into()),
                ]),
            ));
        }
        fields.push(("trials", self.trials.into()));
        fields.push(("seed", self.seed.into()));
        JsonValue::object(fields)
    }

    /// Renders the spec as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    /// Parses a spec from JSON text and validates it.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MalformedSpec`] for syntax or schema violations, plus
    /// everything [`ScenarioSpec::validate`] reports.
    pub fn from_json(text: &str) -> Result<Self, ProtocolError> {
        let doc = JsonValue::parse(text).map_err(|e| ProtocolError::malformed(e.to_string()))?;
        Self::from_json_value(&doc)
    }

    /// Parses a spec from its JSON document model and validates it.
    pub fn from_json_value(doc: &JsonValue) -> Result<Self, ProtocolError> {
        let spec = Self::decode(doc)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Loads one spec or a `{"scenarios": [...]}` bundle from a JSON file —
    /// the shared loader behind the `geogossip` CLI and the bench binary, so
    /// the accepted file shapes cannot drift between them.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MalformedSpec`] when the file cannot be read, does
    /// not parse, holds an empty or non-array `scenarios` key, or any member
    /// fails spec validation; messages carry the file path.
    pub fn load_file(path: &str) -> Result<Vec<Self>, ProtocolError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ProtocolError::malformed(format!("cannot read `{path}`: {e}")))?;
        let doc = JsonValue::parse(&text)
            .map_err(|e| ProtocolError::malformed(format!("{path}: {e}")))?;
        if let Some(list) = doc.get("scenarios") {
            let items = list.as_array().ok_or_else(|| {
                ProtocolError::malformed(format!("{path}: `scenarios` must be an array"))
            })?;
            if items.is_empty() {
                return Err(ProtocolError::malformed(format!(
                    "{path}: `scenarios` is empty"
                )));
            }
            items.iter().map(Self::from_json_value).collect()
        } else {
            Ok(vec![Self::from_json_value(&doc)?])
        }
    }

    fn decode(doc: &JsonValue) -> Result<Self, ProtocolError> {
        let obj = doc
            .as_object()
            .ok_or_else(|| ProtocolError::malformed("scenario must be a JSON object"))?;
        for (key, _) in obj {
            if !matches!(
                key.as_str(),
                "name"
                    | "topology"
                    | "field"
                    | "protocol"
                    | "stop"
                    | "faults"
                    | "transport"
                    | "parallelism"
                    | "trials"
                    | "seed"
            ) {
                return Err(ProtocolError::malformed(format!(
                    "unknown scenario key `{key}`"
                )));
            }
        }
        let topology = decode_topology(
            doc.get("topology")
                .ok_or_else(|| ProtocolError::malformed("missing `topology`"))?,
        )?;
        let field_token = doc
            .get("field")
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| ProtocolError::malformed("`field` must be a string"))
            })
            .transpose()?
            .unwrap_or_else(|| "spatial-gradient".to_string());
        let field = Field::parse(&field_token).ok_or_else(|| {
            ProtocolError::malformed(format!(
                "unknown field `{field_token}` (known: spike, uniform, ramp, bimodal, spatial-gradient)"
            ))
        })?;
        let protocol = decode_protocol(
            doc.get("protocol")
                .ok_or_else(|| ProtocolError::malformed("missing `protocol`"))?,
        )?;
        let stop = decode_stop(
            doc.get("stop")
                .ok_or_else(|| ProtocolError::malformed("missing `stop`"))?,
        )?;
        let faults = match doc.get("faults") {
            None => FaultSpec::default(),
            Some(value) => FaultSpec::decode(value)?,
        };
        let transport = match doc.get("transport") {
            None => None,
            Some(value) => Some(TransportSpec::decode(value)?),
        };
        let parallelism = match doc.get("parallelism") {
            None => None,
            Some(value) => Some(decode_parallelism(value)?),
        };
        let trials = match doc.get("trials") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| ProtocolError::malformed("`trials` must be a whole number"))?,
        };
        let seed = match doc.get("seed") {
            None => STANDARD_SEED,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| ProtocolError::malformed("`seed` must be a whole number"))?,
        };
        let name = doc
            .get("name")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("{}-n{}", protocol.name, topology.n));
        Ok(ScenarioSpec {
            name,
            topology,
            field,
            protocol,
            stop,
            faults,
            transport,
            parallelism,
            trials,
            seed,
        })
    }
}

/// Decodes the optional `parallelism` key: `{"threads": t, "batch": b}`,
/// where `batch` defaults to [`DEFAULT_TICK_BATCH`] when omitted (shared
/// with the sweep schema, so the parallelism grammar cannot drift).
pub(crate) fn decode_parallelism(doc: &JsonValue) -> Result<ParallelSpec, ProtocolError> {
    let obj = doc
        .as_object()
        .ok_or_else(|| ProtocolError::malformed("`parallelism` must be an object"))?;
    for (key, _) in obj {
        if !matches!(key.as_str(), "threads" | "batch") {
            return Err(ProtocolError::malformed(format!(
                "unknown parallelism key `{key}` (known: threads, batch)"
            )));
        }
    }
    let threads = doc
        .get("threads")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ProtocolError::malformed("`parallelism.threads` must be a whole number"))?
        as usize;
    let batch = match doc.get("batch") {
        None => DEFAULT_TICK_BATCH,
        Some(value) => value
            .as_u64()
            .ok_or_else(|| ProtocolError::malformed("`parallelism.batch` must be a whole number"))?
            as usize,
    };
    Ok(ParallelSpec { threads, batch })
}

/// Renders a [`PlacementSpec`] to its JSON form (shared with the sweep
/// schema, so the placement grammar cannot drift between the two).
pub(crate) fn placement_to_json(placement: &PlacementSpec) -> JsonValue {
    match *placement {
        PlacementSpec::UniformSquare => JsonValue::string("uniform-square"),
        PlacementSpec::Clustered { clusters, spread } => JsonValue::object(vec![(
            "clustered",
            JsonValue::object(vec![
                ("clusters", clusters.into()),
                ("spread", spread.into()),
            ]),
        )]),
        PlacementSpec::Perforated { hole } => JsonValue::object(vec![(
            "perforated",
            JsonValue::object(vec![(
                "hole",
                JsonValue::Array(vec![
                    hole.min().x.into(),
                    hole.min().y.into(),
                    hole.max().x.into(),
                    hole.max().y.into(),
                ]),
            )]),
        )]),
    }
}

/// Renders a [`RadiusSpec`] to its JSON form (shared with the sweep schema).
pub(crate) fn radius_to_json(radius: &RadiusSpec) -> JsonValue {
    match *radius {
        RadiusSpec::ConnectivityConstant(c) => {
            JsonValue::object(vec![("connectivity-constant", c.into())])
        }
        RadiusSpec::Absolute(r) => JsonValue::object(vec![("absolute", r.into())]),
    }
}

/// Renders a [`ProtocolSpec`] (name + params) to its JSON form (shared with
/// the sweep schema).
pub(crate) fn protocol_to_json(protocol: &ProtocolSpec) -> JsonValue {
    let params = JsonValue::Object(
        protocol
            .params
            .iter()
            .map(|(k, v)| {
                let value = match v {
                    ParamValue::Number(x) => JsonValue::Number(*x),
                    ParamValue::Text(s) => JsonValue::string(s.clone()),
                    ParamValue::Flag(b) => JsonValue::Bool(*b),
                };
                (k.clone(), value)
            })
            .collect(),
    );
    JsonValue::object(vec![
        ("name", JsonValue::string(protocol.name.clone())),
        ("params", params),
    ])
}

/// Decodes a placement value (`"uniform-square"`, `{"clustered": …}` or
/// `{"perforated": …}`).
pub(crate) fn decode_placement(value: &JsonValue) -> Result<PlacementSpec, ProtocolError> {
    match value {
        JsonValue::String(s) if s == "uniform-square" => Ok(PlacementSpec::UniformSquare),
        value => {
            if let Some(clustered) = value.get("clustered") {
                let clusters = clustered
                    .get("clusters")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| {
                        ProtocolError::malformed("`clustered.clusters` must be a whole number")
                    })? as usize;
                let spread = clustered
                    .get("spread")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| {
                        ProtocolError::malformed("`clustered.spread` must be a number")
                    })?;
                Ok(PlacementSpec::Clustered { clusters, spread })
            } else if let Some(perforated) = value.get("perforated") {
                let hole = perforated
                    .get("hole")
                    .and_then(JsonValue::as_array)
                    .filter(|coords| coords.len() == 4)
                    .ok_or_else(|| {
                        ProtocolError::malformed(
                            "`perforated.hole` must be an array [x0, y0, x1, y1]",
                        )
                    })?;
                let coord = |i: usize| {
                    hole[i].as_f64().ok_or_else(|| {
                        ProtocolError::malformed("`perforated.hole` entries must be numbers")
                    })
                };
                Ok(PlacementSpec::Perforated {
                    hole: Rect::new(
                        Point::new(coord(0)?, coord(1)?),
                        Point::new(coord(2)?, coord(3)?),
                    ),
                })
            } else {
                Err(ProtocolError::malformed(
                    "placement must be \"uniform-square\", {\"clustered\": …} or {\"perforated\": …}",
                ))
            }
        }
    }
}

/// Decodes a radius value (`{"connectivity-constant": c}` or
/// `{"absolute": r}`).
pub(crate) fn decode_radius(value: &JsonValue) -> Result<RadiusSpec, ProtocolError> {
    if let Some(c) = value
        .get("connectivity-constant")
        .and_then(JsonValue::as_f64)
    {
        Ok(RadiusSpec::ConnectivityConstant(c))
    } else if let Some(r) = value.get("absolute").and_then(JsonValue::as_f64) {
        Ok(RadiusSpec::Absolute(r))
    } else {
        Err(ProtocolError::malformed(
            "radius must be {\"connectivity-constant\": c} or {\"absolute\": r}",
        ))
    }
}

/// Decodes a surface token (`"unit-square"` / `"torus"`).
pub(crate) fn decode_surface(value: &JsonValue) -> Result<Topology, ProtocolError> {
    let token = value
        .as_str()
        .ok_or_else(|| ProtocolError::malformed("surface must be a string"))?;
    Topology::parse(token).ok_or_else(|| {
        ProtocolError::malformed(format!(
            "unknown surface `{token}` (known: unit-square, torus)"
        ))
    })
}

fn decode_topology(doc: &JsonValue) -> Result<TopologySpec, ProtocolError> {
    let n = doc
        .get("n")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ProtocolError::malformed("`topology.n` must be a whole number"))?
        as usize;
    let placement = match doc.get("placement") {
        None => PlacementSpec::UniformSquare,
        Some(value) => decode_placement(value)?,
    };
    let radius = match doc.get("radius") {
        None => RadiusSpec::ConnectivityConstant(STANDARD_RADIUS_CONSTANT),
        Some(value) => decode_radius(value)?,
    };
    let surface = match doc.get("surface") {
        None => Topology::UnitSquare,
        Some(value) => decode_surface(value)?,
    };
    Ok(TopologySpec {
        n,
        placement,
        radius,
        surface,
    })
}

pub(crate) fn decode_protocol(doc: &JsonValue) -> Result<ProtocolSpec, ProtocolError> {
    let name = doc
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ProtocolError::malformed("`protocol.name` must be a string"))?
        .to_string();
    let mut params = ParamMap::new();
    if let Some(raw) = doc.get("params") {
        let entries = raw
            .as_object()
            .ok_or_else(|| ProtocolError::malformed("`protocol.params` must be an object"))?;
        for (key, value) in entries {
            let decoded = match value {
                JsonValue::Number(v) => ParamValue::Number(*v),
                JsonValue::String(s) => ParamValue::Text(s.clone()),
                JsonValue::Bool(b) => ParamValue::Flag(*b),
                other => {
                    return Err(ProtocolError::malformed(format!(
                        "parameter `{key}` must be a number, string or bool, got {other:?}"
                    )))
                }
            };
            params.insert(key.clone(), decoded);
        }
    }
    Ok(ProtocolSpec { name, params })
}

fn decode_stop(doc: &JsonValue) -> Result<StopCondition, ProtocolError> {
    let epsilon = doc
        .get("epsilon")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ProtocolError::malformed("`stop.epsilon` must be a number"))?;
    let cap = |key: &str, default: Option<u64>| -> Result<Option<u64>, ProtocolError> {
        match doc.get(key) {
            None => Ok(default),
            Some(JsonValue::Null) => Ok(None),
            Some(value) => value.as_u64().map(Some).ok_or_else(|| {
                ProtocolError::malformed(format!("`stop.{key}` must be a whole number or null"))
            }),
        }
    };
    Ok(StopCondition {
        epsilon,
        max_ticks: cap("max-ticks", Some(STANDARD_MAX_TICKS))?,
        max_transmissions: cap("max-transmissions", Some(1_000_000_000))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::InitialCondition;

    #[test]
    fn standard_spec_matches_the_historical_workload() {
        let spec = ScenarioSpec::standard("pairwise", 256, 0.05);
        assert_eq!(spec.topology.n, 256);
        assert_eq!(spec.topology.placement, PlacementSpec::UniformSquare);
        assert_eq!(
            spec.topology.radius,
            RadiusSpec::ConnectivityConstant(STANDARD_RADIUS_CONSTANT)
        );
        assert_eq!(spec.field, Field::SpatialGradient);
        assert_eq!(spec.stop.max_ticks, Some(STANDARD_MAX_TICKS));
        assert_eq!(spec.stop.max_transmissions, Some(1_000_000_000));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_epsilon_and_sizes() {
        let mut spec = ScenarioSpec::standard("pairwise", 128, 0.0);
        assert!(matches!(
            spec.validate(),
            Err(ProtocolError::InvalidParameter { name, .. }) if name == "epsilon"
        ));
        spec.stop.epsilon = f64::NAN;
        assert!(spec.validate().is_err());
        spec.stop.epsilon = 0.1;
        spec.topology.n = 1;
        assert!(spec.validate().is_err());
        spec.topology.n = 64;
        spec.trials = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn topology_build_is_reproducible_per_trial() {
        let spec = TopologySpec::standard(128);
        let seeds = SeedStream::new(9);
        let a = spec.build(&seeds, 0);
        let b = spec.build(&seeds, 0);
        let c = spec.build(&seeds, 1);
        assert_eq!(a.positions(), b.positions());
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn json_round_trips_a_rich_spec() {
        let mut spec = ScenarioSpec::standard("affine-idealized", 512, 0.02)
            .with_trials(3)
            .with_seed(7)
            .with_field(Field::Condition(InitialCondition::Bimodal));
        spec.topology.placement = PlacementSpec::Clustered {
            clusters: 4,
            spread: 0.08,
        };
        spec.topology.surface = Topology::Torus;
        spec.protocol = ProtocolSpec::named("affine-idealized")
            .with_number("coefficient-fraction", 0.3)
            .with_text("local-averaging", "exact");
        spec.stop.max_transmissions = None;

        let json = spec.to_json();
        let parsed = ScenarioSpec::from_json(&json).expect("round trip parses");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn json_defaults_fill_missing_fields() {
        let spec = ScenarioSpec::from_json(
            r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"}, "stop": {"epsilon": 0.5}}"#,
        )
        .expect("minimal spec parses");
        assert_eq!(spec.name, "pairwise-n64");
        assert_eq!(spec.trials, 1);
        assert_eq!(spec.seed, STANDARD_SEED);
        assert_eq!(spec.field, Field::SpatialGradient);
        assert_eq!(spec.topology.surface, Topology::UnitSquare);
    }

    #[test]
    fn json_rejects_schema_violations() {
        for (bad, fragment) in [
            (r#"[]"#, "object"),
            (
                r#"{"protocol": {"name": "pairwise"}, "stop": {"epsilon": 0.5}}"#,
                "topology",
            ),
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"}, "stop": {"epsilon": 0.5}, "oops": 1}"#,
                "unknown scenario key",
            ),
            (
                r#"{"topology": {"n": 64, "surface": "moebius"}, "protocol": {"name": "pairwise"}, "stop": {"epsilon": 0.5}}"#,
                "surface",
            ),
            (
                r#"{"topology": {"n": 64}, "field": "sawtooth", "protocol": {"name": "pairwise"}, "stop": {"epsilon": 0.5}}"#,
                "field",
            ),
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"}, "stop": {"epsilon": -1}}"#,
                "epsilon",
            ),
        ] {
            let err = ScenarioSpec::from_json(bad).expect_err(bad);
            assert!(
                err.to_string().contains(fragment),
                "error for {bad} was `{err}`, expected to mention `{fragment}`"
            );
        }
    }

    #[test]
    fn json_round_trips_a_faulty_spec_and_defaults_to_no_faults() {
        use crate::fault::ChurnEvent;
        let spec = ScenarioSpec::standard("pairwise", 128, 0.1).with_faults(FaultSpec {
            drop_rate: 0.2,
            stale_fraction: 0.05,
            churn: vec![ChurnEvent {
                fraction: 0.1,
                at_tick: 500,
                rejoin_tick: Some(2_000),
            }],
        });
        let json = spec.to_json();
        assert!(json.contains("\"faults\""));
        let parsed = ScenarioSpec::from_json(&json).expect("faulty spec round trips");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_json(), json);

        // No faults → no `faults` key in the rendering (schema stability),
        // and a missing key decodes to the default.
        let plain = ScenarioSpec::standard("pairwise", 128, 0.1);
        assert!(!plain.to_json().contains("faults"));
        let parsed = ScenarioSpec::from_json(&plain.to_json()).unwrap();
        assert!(parsed.faults.is_none());

        // An explicit all-default faults object is the same spec.
        let explicit = ScenarioSpec::from_json(
            r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                "stop": {"epsilon": 0.5}, "faults": {}}"#,
        )
        .unwrap();
        assert!(explicit.faults.is_none());
    }

    #[test]
    fn json_rejects_bad_fault_specs() {
        for (bad, fragment) in [
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                    "stop": {"epsilon": 0.5}, "faults": {"oops": 1}}"#,
                "unknown faults key",
            ),
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                    "stop": {"epsilon": 0.5}, "faults": {"drop-rate": 1.5}}"#,
                "drop-rate",
            ),
        ] {
            let err = ScenarioSpec::from_json(bad).expect_err(bad);
            assert!(
                err.to_string().contains(fragment),
                "error for {bad} was `{err}`, expected `{fragment}`"
            );
        }
    }

    #[test]
    fn json_round_trips_parallelism_and_defaults_to_none() {
        let spec = ScenarioSpec::standard("geographic", 256, 0.05)
            .with_parallelism(ParallelSpec::with_threads(4).with_batch(512));
        let json = spec.to_json();
        assert!(json.contains("\"parallelism\""));
        let parsed = ScenarioSpec::from_json(&json).expect("parallel spec round trips");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_json(), json);

        // No parallelism → no key in the rendering (schema stability), and a
        // missing key decodes to the sequential path.
        let plain = ScenarioSpec::standard("geographic", 256, 0.05);
        assert!(!plain.to_json().contains("parallelism"));
        let parsed = ScenarioSpec::from_json(&plain.to_json()).unwrap();
        assert_eq!(parsed.parallelism, None);

        // `batch` is optional and defaults to the engine's batch size.
        let defaulted = ScenarioSpec::from_json(
            r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                "stop": {"epsilon": 0.5}, "parallelism": {"threads": 2}}"#,
        )
        .unwrap();
        assert_eq!(
            defaulted.parallelism,
            Some(ParallelSpec {
                threads: 2,
                batch: DEFAULT_TICK_BATCH
            })
        );
    }

    #[test]
    fn json_rejects_bad_parallelism_specs() {
        for (bad, fragment) in [
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                    "stop": {"epsilon": 0.5}, "parallelism": {"threads": 2, "oops": 1}}"#,
                "unknown parallelism key",
            ),
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                    "stop": {"epsilon": 0.5}, "parallelism": {"batch": 64}}"#,
                "parallelism.threads",
            ),
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                    "stop": {"epsilon": 0.5}, "parallelism": {"threads": 0}}"#,
                "parallelism.threads",
            ),
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                    "stop": {"epsilon": 0.5}, "parallelism": {"threads": 2, "batch": 0}}"#,
                "parallelism.batch",
            ),
            (
                r#"{"topology": {"n": 64}, "protocol": {"name": "pairwise"},
                    "stop": {"epsilon": 0.5}, "parallelism": {"threads": 2},
                    "transport": {"latency": "instant"}}"#,
                "cannot be combined with a `transport`",
            ),
        ] {
            let err = ScenarioSpec::from_json(bad).expect_err(bad);
            assert!(
                err.to_string().contains(fragment),
                "error for {bad} was `{err}`, expected `{fragment}`"
            );
        }
    }

    #[test]
    fn protocol_param_accessors_enforce_types() {
        let spec = ProtocolSpec::named("x")
            .with_number("alpha", 0.4)
            .with_text("mode", "exact");
        assert_eq!(spec.number("alpha", 0.0).unwrap(), 0.4);
        assert_eq!(spec.number("missing", 1.5).unwrap(), 1.5);
        assert!(spec.number("mode", 0.0).is_err());
        assert_eq!(spec.text("mode", "gossip").unwrap(), "exact");
        assert!(spec.text("alpha", "x").is_err());
        assert!(spec.reject_unknown(&["alpha", "mode"]).is_ok());
        assert!(spec.reject_unknown(&["alpha"]).is_err());
    }
}
