//! Scenarios as data: declarative experiment descriptions and a runner
//! facade.
//!
//! The paper's headline claim is a *comparison* — pairwise (Boyd et al.) vs
//! geographic (Dimakis et al.) vs affine gossip — across network regimes.
//! This module makes every such comparison a **data change instead of a code
//! change**: a [`ScenarioSpec`] composes
//!
//! * a [`TopologySpec`] — size, [`PlacementSpec`] (uniform / clustered /
//!   perforated), radius regime, and surface
//!   ([`geogossip_geometry::Topology`]: unit square or torus),
//! * a [`Field`](crate::field::Field) — the initial measurement vector,
//! * a [`ProtocolSpec`] — a registry name plus serde parameters,
//! * a [`StopCondition`](crate::StopCondition) — validated so `epsilon > 0`
//!   and finite,
//! * a trial count and a master seed,
//!
//! and the [`Runner`] executes it: per trial it derives placement / field /
//! run RNG streams from `(seed, trial)`, builds the protocol through a
//! [`ProtocolFactory`] (the registry lives in `geogossip_core::registry`,
//! above this crate), drives the engine, and returns a structured
//! [`ScenarioReport`] with per-trial costs and summary statistics. Trials run
//! rayon-parallel under the workspace's determinism contract: results are
//! bit-identical to a sequential loop.
//!
//! Specs round-trip through JSON ([`ScenarioSpec::to_json`] /
//! [`ScenarioSpec::from_json`]); the `geogossip` CLI binary is a thin wrapper
//! over exactly this module.
//!
//! # Schema stability
//!
//! The JSON schema (`scenarios/*.json`) is part of the public API: unknown
//! scenario keys, unknown protocol parameters, unknown field / surface tokens
//! are **errors**, and new capabilities are added as new optional keys with
//! defaults, never by repurposing existing ones.
//!
//! # Example
//!
//! ```
//! use geogossip_sim::scenario::ScenarioSpec;
//!
//! let spec = ScenarioSpec::standard("pairwise", 128, 0.1).with_trials(2);
//! let json = spec.to_json();
//! let parsed = ScenarioSpec::from_json(&json).unwrap();
//! assert_eq!(parsed, spec);
//! // Executing the spec needs a protocol registry; see
//! // `geogossip_core::registry::builtin_runner`.
//! ```

pub mod report;
pub mod runner;
pub mod spec;
pub mod sweep;

pub use report::{reports_table, ScenarioReport, ScenarioSummary, TrialCost};
pub use runner::{ProtocolFactory, Runner};
pub use spec::{
    ParamMap, ParamValue, PlacementSpec, ProtocolSpec, RadiusSpec, ScenarioSpec, TopologySpec,
    STANDARD_MAX_TICKS, STANDARD_RADIUS_CONSTANT, STANDARD_SEED,
};
pub use sweep::{derive_cell_seed, SweepCell, SweepSpec};
