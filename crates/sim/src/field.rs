//! Initial measurement fields.
//!
//! A gossip scenario starts from a value vector `x(0)`; this module owns the
//! vocabulary for describing it declaratively. [`InitialCondition`] generates
//! the position-independent vectors used across the experiments, and
//! [`Field`] extends them with spatially correlated fields that need the
//! sensor positions.
//!
//! The canonical home of these types is the simulation substrate so the
//! scenario layer ([`crate::scenario`]) can materialise fields without
//! depending on the protocol crate; `geogossip_core` re-exports both under
//! its historical paths (`geogossip_core::state::InitialCondition`,
//! `geogossip_core::field::Field`).

use geogossip_graph::GeometricGraph;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Initial value assignments used by the experiments.
///
/// The paper's guarantee is worst-case over `x(0)`; the experiment suite uses
/// several qualitatively different initial conditions because gossip
/// algorithms converge at visibly different speeds on smooth versus spiky
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialCondition {
    /// One sensor holds 1, all others 0 — the hardest case for local
    /// protocols ("measure at a single point").
    Spike,
    /// Values drawn i.i.d. uniformly from `[0, 1]`.
    Uniform,
    /// A linear field `x_i = position-independent ramp i/(n−1)` — smooth but
    /// globally spread.
    Ramp,
    /// Half the sensors hold `+1`, the other half `−1` (by index parity) — a
    /// balanced, high-variance field.
    Bimodal,
}

impl InitialCondition {
    /// Generates the value vector for `n` sensors.
    ///
    /// The `rng` is only consulted by the [`InitialCondition::Uniform`]
    /// variant; the others are deterministic.
    ///
    /// # Example
    ///
    /// ```
    /// use geogossip_sim::field::InitialCondition;
    /// use rand::SeedableRng;
    /// use rand_chacha::ChaCha8Rng;
    /// let v = InitialCondition::Spike.generate(4, &mut ChaCha8Rng::seed_from_u64(0));
    /// assert_eq!(v, vec![1.0, 0.0, 0.0, 0.0]);
    /// ```
    pub fn generate<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> Vec<f64> {
        match self {
            InitialCondition::Spike => {
                let mut v = vec![0.0; n];
                if n > 0 {
                    v[0] = 1.0;
                }
                v
            }
            InitialCondition::Uniform => (0..n).map(|_| rng.gen::<f64>()).collect(),
            InitialCondition::Ramp => {
                if n <= 1 {
                    vec![0.0; n]
                } else {
                    (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
                }
            }
            InitialCondition::Bimodal => (0..n)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
        }
    }

    /// All variants, for experiment sweeps.
    pub fn all() -> [InitialCondition; 4] {
        [
            InitialCondition::Spike,
            InitialCondition::Uniform,
            InitialCondition::Ramp,
            InitialCondition::Bimodal,
        ]
    }
}

impl std::fmt::Display for InitialCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            InitialCondition::Spike => "spike",
            InitialCondition::Uniform => "uniform",
            InitialCondition::Ramp => "ramp",
            InitialCondition::Bimodal => "bimodal",
        };
        write!(f, "{name}")
    }
}

/// The initial measurement field a scenario runs on.
///
/// # Example
///
/// ```
/// use geogossip_sim::field::Field;
/// assert_eq!(Field::SpatialGradient.token(), "spatial-gradient");
/// assert_eq!(Field::parse("spike"), Some(Field::Condition(
///     geogossip_sim::field::InitialCondition::Spike)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Field {
    /// One of the position-independent [`InitialCondition`]s.
    Condition(InitialCondition),
    /// A spatially correlated field: every sensor measures its own
    /// x-coordinate (an east–west gradient). Averaging this field requires
    /// moving mass across the whole unit square, which is the regime where
    /// the paper's long-range protocols pay off; position-independent fields
    /// can be averaged mostly locally and understate the gap.
    SpatialGradient,
}

impl Field {
    /// Materialises the field for a concrete network.
    pub fn values<R: Rng + ?Sized>(self, network: &GeometricGraph, rng: &mut R) -> Vec<f64> {
        match self {
            Field::Condition(condition) => condition.generate(network.len(), rng),
            Field::SpatialGradient => network.positions().iter().map(|p| p.x).collect(),
        }
    }

    /// The stable token used in scenario JSON and on the CLI.
    pub fn token(self) -> &'static str {
        match self {
            Field::Condition(InitialCondition::Spike) => "spike",
            Field::Condition(InitialCondition::Uniform) => "uniform",
            Field::Condition(InitialCondition::Ramp) => "ramp",
            Field::Condition(InitialCondition::Bimodal) => "bimodal",
            Field::SpatialGradient => "spatial-gradient",
        }
    }

    /// Parses a [`Field::token`] back into a field.
    pub fn parse(token: &str) -> Option<Field> {
        match token {
            "spike" => Some(Field::Condition(InitialCondition::Spike)),
            "uniform" => Some(Field::Condition(InitialCondition::Uniform)),
            "ramp" => Some(Field::Condition(InitialCondition::Ramp)),
            "bimodal" => Some(Field::Condition(InitialCondition::Bimodal)),
            "spatial-gradient" => Some(Field::SpatialGradient),
            _ => None,
        }
    }

    /// All fields, for sweeps and for documenting the spec schema.
    pub fn all() -> [Field; 5] {
        [
            Field::Condition(InitialCondition::Spike),
            Field::Condition(InitialCondition::Uniform),
            Field::Condition(InitialCondition::Ramp),
            Field::Condition(InitialCondition::Bimodal),
            Field::SpatialGradient,
        ]
    }
}

impl std::fmt::Display for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::Point;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn spike_puts_the_mass_at_node_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = InitialCondition::Spike.generate(5, &mut rng);
        assert_eq!(v, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(InitialCondition::Spike.generate(0, &mut rng).is_empty());
    }

    #[test]
    fn ramp_is_linear_and_handles_tiny_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = InitialCondition::Ramp.generate(3, &mut rng);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
        assert_eq!(InitialCondition::Ramp.generate(1, &mut rng), vec![0.0]);
    }

    #[test]
    fn bimodal_alternates_and_sums_to_zero_for_even_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = InitialCondition::Bimodal.generate(6, &mut rng);
        assert_eq!(v, vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        assert_eq!(v.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn uniform_is_reproducible_per_seed() {
        let a = InitialCondition::Uniform.generate(10, &mut ChaCha8Rng::seed_from_u64(4));
        let b = InitialCondition::Uniform.generate(10, &mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn field_tokens_round_trip() {
        for field in Field::all() {
            assert_eq!(Field::parse(field.token()), Some(field));
            assert_eq!(format!("{field}"), field.token());
        }
        assert_eq!(Field::parse("no-such-field"), None);
    }

    #[test]
    fn spatial_gradient_reads_x_coordinates() {
        let graph = GeometricGraph::build(vec![Point::new(0.1, 0.9), Point::new(0.7, 0.2)], 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let values = Field::SpatialGradient.values(&graph, &mut rng);
        assert_eq!(values, vec![0.1, 0.7]);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(InitialCondition::Spike.to_string(), "spike");
        assert_eq!(InitialCondition::all().len(), 4);
    }
}
