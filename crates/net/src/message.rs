//! The typed protocol messages exchanged between sensor actors.
//!
//! Every network interaction in the message-passing runtime is one of these
//! variants. The shared-memory protocols in `geogossip-core` read and write
//! their partners' values directly; here the same exchanges are decomposed
//! into explicit messages that travel through the scheduler's event queue and
//! are subject to the latency model.
//!
//! Transmission accounting mirrors the shared-memory oracle exactly:
//!
//! * [`Message::Exchange`] and [`Message::AveragingReply`] are the two halves
//!   of a pairwise exchange — one local transmission each, matching the
//!   oracle's `charge_local(2)`.
//! * [`Message::RouteRequest`] and [`Message::RouteReply`] are charged one
//!   routing transmission **per hop**; summed over a round trip this equals
//!   the oracle's lump `charge_routing(outbound + back)`.
//! * [`Message::Commit`] is the uncharged completion handshake. The
//!   shared-memory protocols write both endpoints from the activated node in
//!   a single step; the commit ack reproduces that write *order* (activated
//!   node first, partner second) without inventing a transmission the oracle
//!   never counted.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::Point;

/// A protocol message addressed to a single sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// Pairwise gossip, leg 1: the activated sensor `origin` offers its
    /// current value to a uniformly chosen neighbor.
    Exchange {
        /// The activated sensor that initiated the exchange.
        origin: NodeId,
        /// `origin`'s value at activation time.
        value: f64,
    },
    /// Pairwise gossip, leg 2: the neighbor answers with the convex average;
    /// nobody has committed yet.
    AveragingReply {
        /// The neighbor that computed the average.
        origin: NodeId,
        /// The convex average of the two values.
        value: f64,
    },
    /// Geographic gossip, outbound leg: a greedy-routed request forwarded one
    /// hop at a time toward `target`.
    RouteRequest {
        /// The activated sensor that initiated the round.
        origin: NodeId,
        /// The geographic routing target.
        target: Point,
        /// For node-addressed routing (`uniform-index`), the intended
        /// destination; `None` for position-addressed routing
        /// (`nearest-position`), where the greedy terminus *is* the partner.
        dest: Option<NodeId>,
        /// Hops taken on the outbound leg so far (1 on the first send, +1 per
        /// forward). Pure bookkeeping for the `route-resolved` telemetry
        /// event; the scheduler treats message contents as opaque, so routing
        /// behavior and parity are untouched.
        hops: u32,
    },
    /// Geographic gossip, return leg: the terminus' value greedy-routed back
    /// toward the activated sensor.
    RouteReply {
        /// The route terminus answering the request.
        origin: NodeId,
        /// The activated sensor the reply is routed back to.
        dest: NodeId,
        /// `origin`'s value when the request arrived.
        value: f64,
    },
    /// Uncharged completion handshake: the recipient commits `value` and the
    /// round is counted as an exchange.
    Commit {
        /// The averaged value the recipient must adopt.
        value: f64,
    },
}
