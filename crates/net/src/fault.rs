//! Node-fault state for the message-passing runtime.
//!
//! [`NetFaultPlan`] rebuilds the *exact* fault state the shared-memory
//! orchestrator (`geogossip_sim::fault::FaultyActivation`) would hold for the
//! same `(seed, trial)`: the stale set is drawn first (`⌊stale_fraction·n⌋`
//! distinct nodes by partial Fisher–Yates via
//! [`geogossip_sim::fault::draw_distinct`]), then each churn event's node set
//! in spec order, all from the dedicated `"faults"` trial stream. The churn
//! schedule is stable-sorted by tick so simultaneous actions apply in
//! (rejoin-before-kill, spec) order — the same tie-break the oracle uses.
//!
//! Activation loss (`faults.drop-rate`) deliberately has **no** net-side
//! representation: on the wire, loss is a per-message property
//! (`transport.reliability.drop`), and the scenario schema rejects specs that
//! ask for both (see `ScenarioSpec::validate`). Because the drop rate is
//! always zero here, the fault stream is consumed only at construction time —
//! exactly what the oracle does when `drop_rate == 0` — so instant-schedule
//! faulted runs stay bit-identical to the shared-memory engine.

use geogossip_graph::LivenessMask;
use geogossip_sim::fault::{draw_distinct, FaultSpec};
use rand_chacha::ChaCha8Rng;

/// What a churn schedule entry does when its tick arrives. (A private mirror
/// of the orchestrator's schedule entries; the type itself is not exported by
/// `geogossip_sim`, but the *behavior* is pinned by `tests/net_reliability.rs`.)
#[derive(Debug, Clone)]
enum ChurnAction {
    Kill(Vec<u32>),
    Revive(Vec<u32>),
}

/// Per-trial node-fault state for the net scheduler: the liveness mask, the
/// frozen stale set, and the churn schedule, advanced tick by tick exactly
/// like the shared-memory orchestrator.
pub struct NetFaultPlan {
    mask: LivenessMask,
    stale: Vec<bool>,
    stale_count: usize,
    schedule: Vec<(u64, ChurnAction)>,
    next_event: usize,
    dead_activations: u64,
}

impl NetFaultPlan {
    /// Builds the plan for `spec` over an `n`-node network.
    ///
    /// `fault_rng` must be the dedicated fault stream
    /// (`seeds.trial(FAULT_STREAM_LABEL, trial)`); the construction draw
    /// order (stale set, then churn sets in spec order) is frozen and shared
    /// with `FaultyActivation::new`.
    pub fn new(spec: &FaultSpec, n: usize, fault_rng: ChaCha8Rng) -> Self {
        let mut fault_rng = fault_rng;
        let stale_nodes = draw_distinct(
            n,
            (spec.stale_fraction * n as f64).floor() as usize,
            &mut fault_rng,
        );
        let mut stale = vec![false; if stale_nodes.is_empty() { 0 } else { n }];
        for &i in &stale_nodes {
            stale[i as usize] = true;
        }
        let mut schedule: Vec<(u64, ChurnAction)> = Vec::new();
        for event in &spec.churn {
            let nodes = draw_distinct(
                n,
                (event.fraction * n as f64).floor() as usize,
                &mut fault_rng,
            );
            if let Some(rejoin) = event.rejoin_tick {
                schedule.push((rejoin, ChurnAction::Revive(nodes.clone())));
            }
            schedule.push((event.at_tick, ChurnAction::Kill(nodes)));
        }
        schedule.sort_by_key(|(tick, _)| *tick);
        NetFaultPlan {
            mask: LivenessMask::all_alive(n),
            stale_count: stale_nodes.len(),
            stale,
            schedule,
            next_event: 0,
            dead_activations: 0,
        }
    }

    /// Applies every churn action scheduled at or before `tick_index`, in
    /// the frozen (tick, rejoin-before-kill, spec) order.
    pub fn advance_schedule(&mut self, tick_index: u64) {
        while let Some((at, action)) = self.schedule.get(self.next_event) {
            if *at > tick_index {
                break;
            }
            match action {
                ChurnAction::Kill(nodes) => {
                    for &i in nodes {
                        self.mask.kill(i as usize);
                    }
                }
                ChurnAction::Revive(nodes) => {
                    for &i in nodes {
                        self.mask.revive(i as usize);
                    }
                }
            }
            self.next_event += 1;
        }
    }

    /// Whether sensor `node` is currently alive.
    pub fn is_alive(&self, node: usize) -> bool {
        self.mask.is_alive(node)
    }

    /// Records a dead sensor's consumed tick (clock advances, nothing else).
    pub fn record_dead_activation(&mut self) {
        self.dead_activations += 1;
    }

    /// Activations of dead sensors so far.
    pub fn dead_activations(&self) -> u64 {
        self.dead_activations
    }

    /// Number of sensors frozen as stale-value nodes.
    pub fn stale_count(&self) -> usize {
        self.stale_count
    }

    /// The `(alive, stale)` slices handed to protocol handlers: `alive` is
    /// empty while every sensor lives (so masked code paths stay dormant,
    /// like the oracle's `FaultContext`), `stale` is empty when no node is
    /// stale.
    pub fn slices(&self) -> (&[bool], &[bool]) {
        let alive: &[bool] = if self.mask.any_dead() {
            self.mask.as_slice()
        } else {
            &[]
        };
        (alive, &self.stale)
    }
}
