//! The deterministic simulated scheduler driving sensor actors.
//!
//! [`NetScheduler::run`] is a message-passing re-implementation of the
//! shared-memory engine loop (`geogossip_sim::engine::AsyncEngine::run`):
//! the same stop checks in the same order, the same squared-domain
//! convergence fast path (including [`geogossip_sim::engine::SQ_THRESHOLD_SLACK`]),
//! the same trace stride/thinning discipline, and a Poisson activation clock
//! consuming the identical `"run"` RNG stream. On the instant-lossless
//! schedule every message a tick produces is delivered before the next loop
//! iteration observes anything, so reports are **bit-identical** to the
//! shared-memory oracle — pinned by `tests/net_parity.rs`.
//!
//! # Determinism contract
//!
//! * Activations (clock gaps, tick→node assignment, protocol partner draws)
//!   consume the caller's `rng` — the same `"run"`-stream generator the
//!   shared-memory engine would use, in the same order.
//! * Message *latency* draws consume a separate `net_rng` (the dedicated
//!   `"net"` seed stream). The [`LatencyModel::Instant`] and
//!   [`LatencyModel::Fixed`] schedules draw **nothing** from it, so switching
//!   among them can never perturb activation randomness.
//! * Messages scheduled for the same delivery time are delivered in send
//!   order ([`geogossip_sim::EventQueue`]'s FIFO sequence tie-break); distinct
//!   times are delivered in time order, which under random latency reorders
//!   messages in flight exactly as a real network would.

use crate::message::Message;
use geogossip_geometry::point::NodeId;
use geogossip_sim::engine::{EngineReport, SquaredError, StopCondition, StopReason};
use geogossip_sim::engine::{DEFAULT_MAX_TRACE_POINTS, SQ_THRESHOLD_SLACK};
use geogossip_sim::metrics::{ConvergenceTrace, TracePoint, TransmissionCounter};
use geogossip_sim::transport::LatencyModel;
use geogossip_sim::{EventQueue, GlobalPoissonClock};
use rand::RngCore;

/// An in-flight message: who it is addressed to and what it carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// The sensor the message is addressed to.
    pub to: NodeId,
    /// The message payload.
    pub message: Message,
}

/// Message-economy accounting for one run: everything the transport layer
/// moved, independent of what the protocol chose to charge.
///
/// `sent - delivered` messages were still in flight when the run stopped
/// (abandoned; their effects never apply). On the instant schedule the queue
/// drains within every tick, so `sent == delivered` and the in-flight peak
/// only reflects intra-tick cascades.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageLedger {
    /// Messages handed to the transport (including uncharged commits).
    pub sent: u64,
    /// Messages delivered to their recipient's actor.
    pub delivered: u64,
    /// Largest number of messages simultaneously in flight.
    pub in_flight_peak: u64,
}

impl MessageLedger {
    /// Messages still in flight (sent but not delivered).
    pub fn in_flight(&self) -> u64 {
        self.sent - self.delivered
    }

    /// The ledger as named metrics, appended to a trial's metric list.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("messages_sent".to_string(), self.sent as f64),
            ("messages_delivered".to_string(), self.delivered as f64),
            (
                "messages_in_flight_peak".to_string(),
                self.in_flight_peak as f64,
            ),
        ]
    }
}

/// The sending surface handed to actors during activations and message
/// deliveries. `now` is the activation tick time (for activations) or the
/// message's own arrival time (for deliveries), so cascaded sends are
/// scheduled relative to when the sender actually acted.
pub struct NetContext<'a> {
    pub(crate) now: f64,
    pub(crate) latency: LatencyModel,
    pub(crate) net_rng: &'a mut dyn RngCore,
    pub(crate) queue: &'a mut EventQueue<Envelope>,
    pub(crate) tx: &'a mut TransmissionCounter,
    pub(crate) ledger: &'a mut MessageLedger,
}

impl NetContext<'_> {
    /// The simulation time the current activation or delivery runs at.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Sends a one-hop local message, charged as one local transmission.
    pub fn send_local(&mut self, to: NodeId, message: Message) {
        self.tx.charge_local(1);
        self.dispatch(to, message);
    }

    /// Forwards a message one routing hop, charged as one routing
    /// transmission. Per-hop charges over a greedy round trip sum to exactly
    /// the lump `charge_routing(outbound + back)` of the shared-memory oracle.
    pub fn send_routed(&mut self, to: NodeId, message: Message) {
        self.tx.charge_routing(1);
        self.dispatch(to, message);
    }

    /// Sends a message without charging any transmission: commit handshakes
    /// (the oracle's single-step double write never counted a transmission)
    /// and dead-end handoffs (the oracle's shared-memory fallback read). The
    /// message still travels through the queue and the ledger counts it.
    pub fn send_free(&mut self, to: NodeId, message: Message) {
        self.dispatch(to, message);
    }

    fn dispatch(&mut self, to: NodeId, message: Message) {
        let delay = self.latency.sample(self.net_rng);
        self.ledger.sent += 1;
        let in_flight = self.ledger.sent - self.ledger.delivered;
        self.ledger.in_flight_peak = self.ledger.in_flight_peak.max(in_flight);
        self.queue
            .schedule(self.now + delay, Envelope { to, message });
    }
}

/// A gossip protocol expressed as per-sensor actors: activations initiate
/// rounds, message handlers advance them. The scheduler owns time, the event
/// queue, and transmission/trace accounting; the protocol owns values and its
/// own round counters.
///
/// Handlers deliberately receive no activation RNG: the shared-memory oracle
/// consumes all of a tick's randomness inside the activation, so denying
/// handlers access to it makes stream divergence unrepresentable.
pub trait NetProtocol {
    /// A sensor's Poisson clock ticked: start a round (or record why not).
    fn on_activation(&mut self, node: NodeId, ctx: &mut NetContext<'_>, rng: &mut dyn RngCore);

    /// A message addressed to `at` arrived.
    fn on_message(&mut self, at: NodeId, message: Message, ctx: &mut NetContext<'_>);

    /// Current ℓ₂ error relative to the initial error (the stop metric).
    fn relative_error(&self) -> f64;

    /// Squared-domain error pair for the engine's convergence fast path.
    fn squared_error(&self) -> Option<SquaredError>;

    /// Display name; matches the shared-memory protocol it mirrors.
    fn name(&self) -> &str;

    /// Protocol counters (same keys as the shared-memory oracle).
    fn metrics(&self) -> Vec<(String, f64)>;
}

/// The simulated event-driven scheduler.
///
/// Construction mirrors `AsyncEngine::new`: the trace sampling stride
/// defaults to one point per `n` ticks and traces are thinned geometrically
/// above [`DEFAULT_MAX_TRACE_POINTS`].
#[derive(Debug, Clone)]
pub struct NetScheduler {
    n: usize,
    sample_every: u64,
    max_trace_points: usize,
}

impl NetScheduler {
    /// A scheduler for a network of `n` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (protocol constructors reject empty networks
    /// before a scheduler is ever built).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "the net scheduler needs at least one sensor");
        NetScheduler {
            n,
            sample_every: (n as u64).max(1),
            max_trace_points: DEFAULT_MAX_TRACE_POINTS,
        }
    }

    /// Runs `protocol` under the given latency schedule until `stop` is met.
    ///
    /// `rng` is the activation stream (the runner's `"run"` trial stream);
    /// `net_rng` is the dedicated `"net"` trial stream consumed only by
    /// latency models that actually draw (see the module docs).
    ///
    /// The loop replicates the shared-memory engine body statement for
    /// statement; the only additions are the two `deliver_due` drains —
    /// pending messages due by the tick's exact time are delivered *before*
    /// the tick's activation (network catches up to the clock), and the
    /// activation's own cascade is drained *after* it (instant messages land
    /// within their tick). Stop checks therefore observe exactly the oracle's
    /// transmission totals on the instant schedule.
    pub fn run(
        &mut self,
        protocol: &mut dyn NetProtocol,
        stop: StopCondition,
        latency: LatencyModel,
        rng: &mut dyn RngCore,
        net_rng: &mut dyn RngCore,
    ) -> (EngineReport, MessageLedger) {
        let mut clock = GlobalPoissonClock::new(self.n);
        let mut queue: EventQueue<Envelope> = EventQueue::new();
        let mut tx = TransmissionCounter::new();
        let mut ledger = MessageLedger::default();
        let mut trace = ConvergenceTrace::new();
        let mut ticks: u64 = 0;
        let mut stride = self.sample_every.max(1);

        trace.push(TracePoint {
            transmissions: 0,
            ticks: 0,
            relative_error: protocol.relative_error(),
        });

        let threshold_hi = protocol.squared_error().map(|sq| {
            let target = stop.epsilon * sq.initial;
            (target * target) * SQ_THRESHOLD_SLACK
        });

        let reason = loop {
            let clearly_above = match (threshold_hi, protocol.squared_error()) {
                (Some(hi), Some(sq)) => sq.current_sq > hi,
                _ => false,
            };
            if !clearly_above && protocol.relative_error() <= stop.epsilon {
                break StopReason::Converged;
            }
            if stop.max_ticks.is_some_and(|m| ticks >= m) {
                break StopReason::TickBudgetExhausted;
            }
            if stop.max_transmissions.is_some_and(|m| tx.total() >= m) {
                break StopReason::TransmissionBudgetExhausted;
            }

            let tick = clock.next_tick(&mut *rng);
            ticks = tick.index;

            deliver_due(
                protocol,
                &mut queue,
                tick.time,
                latency,
                net_rng,
                &mut tx,
                &mut ledger,
            );
            {
                let mut ctx = NetContext {
                    now: tick.time,
                    latency,
                    net_rng: &mut *net_rng,
                    queue: &mut queue,
                    tx: &mut tx,
                    ledger: &mut ledger,
                };
                protocol.on_activation(tick.node, &mut ctx, rng);
            }
            deliver_due(
                protocol,
                &mut queue,
                tick.time,
                latency,
                net_rng,
                &mut tx,
                &mut ledger,
            );

            if tick.index.is_multiple_of(stride) {
                while trace.len() >= self.max_trace_points {
                    stride = stride.saturating_mul(2);
                    trace.thin_to_stride(stride);
                }
                if tick.index.is_multiple_of(stride) {
                    trace.push(TracePoint {
                        transmissions: tx.total(),
                        ticks: tick.index,
                        relative_error: protocol.relative_error(),
                    });
                }
            }
        };

        trace.push(TracePoint {
            transmissions: tx.total(),
            ticks,
            relative_error: protocol.relative_error(),
        });

        (
            EngineReport {
                reason,
                transmissions: tx,
                ticks,
                time: clock.now(),
                final_error: protocol.relative_error(),
                trace,
            },
            ledger,
        )
    }
}

/// Delivers every queued message due at or before `horizon`, in (time, send
/// sequence) order. Deliveries run at the message's own arrival time, so a
/// handler's cascaded sends schedule from that moment — an instant cascade
/// keeps landing inside the same drain.
fn deliver_due(
    protocol: &mut dyn NetProtocol,
    queue: &mut EventQueue<Envelope>,
    horizon: f64,
    latency: LatencyModel,
    net_rng: &mut dyn RngCore,
    tx: &mut TransmissionCounter,
    ledger: &mut MessageLedger,
) {
    while queue.peek_time().is_some_and(|t| t <= horizon) {
        let event = queue.pop().expect("peek_time saw a due event");
        ledger.delivered += 1;
        let Envelope { to, message } = event.payload;
        let mut ctx = NetContext {
            now: event.time,
            latency,
            net_rng: &mut *net_rng,
            queue,
            tx,
            ledger,
        };
        protocol.on_message(to, message, &mut ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A sensor pair that ping-pongs one message per activation, for ledger
    /// and drain-order checks without any gossip semantics.
    struct PingPong {
        bounces: u64,
        error: f64,
    }

    impl NetProtocol for PingPong {
        fn on_activation(
            &mut self,
            node: NodeId,
            ctx: &mut NetContext<'_>,
            _rng: &mut dyn RngCore,
        ) {
            let peer = NodeId(1 - node.index());
            ctx.send_local(peer, Message::Commit { value: 1.0 });
        }

        fn on_message(&mut self, _at: NodeId, _message: Message, _ctx: &mut NetContext<'_>) {
            self.bounces += 1;
            self.error *= 0.5;
        }

        fn relative_error(&self) -> f64 {
            self.error
        }

        fn squared_error(&self) -> Option<SquaredError> {
            None
        }

        fn name(&self) -> &str {
            "ping-pong"
        }

        fn metrics(&self) -> Vec<(String, f64)> {
            vec![("bounces".to_string(), self.bounces as f64)]
        }
    }

    #[test]
    fn instant_schedule_delivers_within_the_tick() {
        let mut protocol = PingPong {
            bounces: 0,
            error: 1.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net_rng = ChaCha8Rng::seed_from_u64(2);
        let (report, ledger) = NetScheduler::new(2).run(
            &mut protocol,
            StopCondition::at_epsilon(0.1),
            LatencyModel::Instant,
            &mut rng,
            &mut net_rng,
        );
        assert!(report.converged());
        // One message per tick, delivered the same tick: nothing in flight.
        assert_eq!(ledger.sent, ledger.delivered);
        assert_eq!(ledger.in_flight_peak, 1);
        assert_eq!(ledger.in_flight(), 0);
        assert_eq!(ledger.sent, report.ticks);
        assert_eq!(protocol.bounces, report.ticks);
        // Each send_local charged one transmission.
        assert_eq!(report.transmissions.local(), report.ticks);
    }

    #[test]
    fn instant_and_fixed_schedules_never_touch_the_net_stream() {
        for latency in [LatencyModel::Instant, LatencyModel::Fixed(0.25)] {
            let mut protocol = PingPong {
                bounces: 0,
                error: 1.0,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut net_rng = ChaCha8Rng::seed_from_u64(4);
            let mut untouched = net_rng.clone();
            let _ = NetScheduler::new(2).run(
                &mut protocol,
                StopCondition::at_epsilon(0.1),
                latency,
                &mut rng,
                &mut net_rng,
            );
            assert_eq!(net_rng.next_u64(), untouched.next_u64());
        }
    }

    #[test]
    fn fixed_latency_keeps_messages_in_flight_at_stop() {
        let mut protocol = PingPong {
            bounces: 0,
            error: 1.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net_rng = ChaCha8Rng::seed_from_u64(6);
        // A latency much longer than the whole run: no message ever lands.
        let (report, ledger) = NetScheduler::new(2).run(
            &mut protocol,
            StopCondition::at_epsilon(0.1).with_max_ticks(10),
            LatencyModel::Fixed(1.0e6),
            &mut rng,
            &mut net_rng,
        );
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        assert_eq!(ledger.sent, 10);
        assert_eq!(ledger.delivered, 0);
        assert_eq!(ledger.in_flight(), 10);
        assert_eq!(ledger.in_flight_peak, 10);
        assert_eq!(protocol.bounces, 0);
    }

    #[test]
    fn ledger_metrics_use_the_documented_keys() {
        let ledger = MessageLedger {
            sent: 5,
            delivered: 3,
            in_flight_peak: 2,
        };
        let metrics = ledger.metrics();
        let keys: Vec<&str> = metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "messages_sent",
                "messages_delivered",
                "messages_in_flight_peak"
            ]
        );
        assert_eq!(ledger.in_flight(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn zero_population_rejected() {
        let _ = NetScheduler::new(0);
    }
}
