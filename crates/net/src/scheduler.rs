//! The deterministic simulated scheduler driving sensor actors.
//!
//! [`NetScheduler::run`] is a message-passing re-implementation of the
//! shared-memory engine loop (`geogossip_sim::engine::AsyncEngine::run`):
//! the same stop checks in the same order, the same squared-domain
//! convergence fast path (including [`geogossip_sim::engine::SQ_THRESHOLD_SLACK`]),
//! the same trace stride/thinning discipline, and a Poisson activation clock
//! consuming the identical `"run"` RNG stream. On the instant-lossless
//! schedule every message a tick produces is delivered before the next loop
//! iteration observes anything, so reports are **bit-identical** to the
//! shared-memory oracle — pinned by `tests/net_parity.rs`.
//!
//! # Determinism contract
//!
//! * Activations (clock gaps, tick→node assignment, protocol partner draws)
//!   consume the caller's `rng` — the same `"run"`-stream generator the
//!   shared-memory engine would use, in the same order.
//! * Message *latency* draws consume a separate `net_rng` (the dedicated
//!   `"net"` seed stream). The [`LatencyModel::Instant`] and
//!   [`LatencyModel::Fixed`] schedules draw **nothing** from it, so switching
//!   among them can never perturb activation randomness.
//! * Messages scheduled for the same delivery time are delivered in send
//!   order ([`geogossip_sim::EventQueue`]'s FIFO sequence tie-break); distinct
//!   times are delivered in time order, which under random latency reorders
//!   messages in flight exactly as a real network would.
//!
//! # Reliability draw order (frozen)
//!
//! With a [`ReliabilitySpec`] in play, every dispatch consumes draws from the
//! `"net"` stream in this order: the **latency** sample first (whatever the
//! schedule draws — nothing for instant/fixed), then the **drop** draw *only
//! if* `drop > 0`, then the **duplicate** draw *only if* `duplicate > 0` and
//! the message survived the wire. A lossless reliability block
//! (`drop == duplicate == 0`) therefore consumes exactly the draws a bare
//! transport does and stays bit-identical to it — pinned by
//! `tests/net_reliability.rs`.
//!
//! Dropped messages were already **charged** by their `send_*` call
//! (charge-before-drop, like activation loss in the shared-memory engine);
//! if the retry budget allows, a retransmission timer is scheduled at
//! `timeout · backoff^(attempt-1)` after the send, and when it fires the
//! retransmission charges the same transmission kind again and re-enters the
//! wire with the **same message id**. A duplicated message schedules its copy
//! at the *same* delivery time (no second latency draw), immediately after
//! the original in FIFO order; receivers suppress redeliveries of an
//! already-processed id, so handlers stay exactly-once.

use crate::fault::NetFaultPlan;
use crate::message::Message;
use geogossip_geometry::point::NodeId;
use geogossip_sim::engine::{EngineReport, SquaredError, StopCondition, StopReason};
use geogossip_sim::engine::{DEFAULT_MAX_TRACE_POINTS, SQ_THRESHOLD_SLACK};
use geogossip_sim::metrics::{ConvergenceTrace, TracePoint, TransmissionCounter};
use geogossip_sim::transport::{LatencyModel, ReliabilitySpec};
use geogossip_sim::{EventQueue, GlobalPoissonClock};
use geogossip_telemetry::{Event, Probe};
use rand::{Rng, RngCore};
use std::collections::HashSet;

/// How a message's transmission was charged, so a retransmission can charge
/// the same kind again (charge-before-drop extends to every attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    /// One local transmission per attempt (`charge_local(1)`).
    Local,
    /// One routing transmission per attempt (`charge_routing(1)`).
    Routed,
    /// Uncharged (commit handshakes and dead-end handoffs).
    Free,
}

/// What a queued envelope does when its time arrives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EnvelopeKind {
    /// Deliver the message to its recipient's actor.
    Deliver,
    /// A retransmission timer: re-charge `charge` and re-enter the wire as
    /// attempt number `attempt` (same message id as the original).
    Retry {
        /// The attempt number this retransmission will be (original = 1).
        attempt: u32,
        /// The transmission kind the original send charged.
        charge: ChargeKind,
    },
}

/// An in-flight message: who it is addressed to and what it carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// The sensor the message is addressed to.
    pub to: NodeId,
    /// The message payload.
    pub message: Message,
    /// Deduplication id (0 on the lossless path, where ids are never needed).
    pub(crate) id: u64,
    /// Delivery vs. retransmission timer.
    pub(crate) kind: EnvelopeKind,
}

/// Message-economy accounting for one run: everything the transport layer
/// moved, independent of what the protocol chose to charge.
///
/// `sent - delivered - dropped` messages were still in flight when the run
/// stopped (abandoned; their effects never apply). On the instant-lossless
/// schedule the queue drains within every tick, so `sent == delivered` and
/// the in-flight peak only reflects intra-tick cascades. Duplicate copies
/// count in `sent` (and `duplicated`); suppressed redeliveries and messages
/// discarded at a dead recipient still count in `delivered` — they left the
/// wire, their handler just never ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageLedger {
    /// Messages handed to the transport (including uncharged commits and
    /// duplicate copies).
    pub sent: u64,
    /// Messages that left the wire at their recipient (including suppressed
    /// duplicates and deliveries discarded at dead sensors).
    pub delivered: u64,
    /// Largest number of messages simultaneously in flight.
    pub in_flight_peak: u64,
    /// Messages the unreliable wire dropped (every attempt counts).
    pub dropped: u64,
    /// Duplicate copies the wire injected.
    pub duplicated: u64,
    /// Retransmissions (re-charged re-entries of a dropped message).
    pub retried: u64,
    /// Messages abandoned after their last permitted attempt was dropped.
    pub rounds_abandoned: u64,
}

impl MessageLedger {
    /// Messages still in flight (sent but neither delivered nor dropped).
    pub fn in_flight(&self) -> u64 {
        self.sent - self.delivered - self.dropped
    }

    /// The ledger as named metrics, appended to a trial's metric list.
    /// These three keys are historical and appear on every net trial.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("messages_sent".to_string(), self.sent as f64),
            ("messages_delivered".to_string(), self.delivered as f64),
            (
                "messages_in_flight_peak".to_string(),
                self.in_flight_peak as f64,
            ),
        ]
    }

    /// The unreliable-wire counters, appended **only** when the transport's
    /// reliability block is lossy (a lossless run must keep the exact metric
    /// list of a bare transport run — the schema-stability invariant).
    pub fn reliability_metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("messages_dropped".to_string(), self.dropped as f64),
            ("messages_duplicated".to_string(), self.duplicated as f64),
            ("messages_retried".to_string(), self.retried as f64),
            ("rounds_abandoned".to_string(), self.rounds_abandoned as f64),
        ]
    }
}

/// The sending surface handed to actors during activations and message
/// deliveries. `now` is the activation tick time (for activations) or the
/// message's own arrival time (for deliveries), so cascaded sends are
/// scheduled relative to when the sender actually acted.
pub struct NetContext<'a, 'p> {
    pub(crate) now: f64,
    pub(crate) latency: LatencyModel,
    pub(crate) reliability: ReliabilitySpec,
    pub(crate) net_rng: &'a mut dyn RngCore,
    pub(crate) queue: &'a mut EventQueue<Envelope>,
    pub(crate) tx: &'a mut TransmissionCounter,
    pub(crate) ledger: &'a mut MessageLedger,
    pub(crate) next_id: &'a mut u64,
    pub(crate) alive: &'a [bool],
    pub(crate) stale: &'a [bool],
    pub(crate) probe: Option<&'a mut (dyn Probe + 'p)>,
}

impl<'a, 'p> NetContext<'a, 'p> {
    /// The simulation time the current activation or delivery runs at.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Whether any sensor is currently dead (empty mask means all alive).
    pub fn any_dead(&self) -> bool {
        !self.alive.is_empty()
    }

    /// Whether sensor `i` is currently alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive.get(i).copied().unwrap_or(true)
    }

    /// Whether sensor `i` is frozen as a stale-value node.
    pub fn is_stale(&self, i: usize) -> bool {
        self.stale.get(i).copied().unwrap_or(false)
    }

    /// The liveness mask for masked routing — empty while every sensor
    /// lives, so masked code paths stay dormant (same convention as the
    /// shared-memory `FaultContext`).
    pub fn alive_mask(&self) -> &'a [bool] {
        self.alive
    }

    /// Emits a telemetry event to the attached probe, if any. Events must
    /// derive only from simulation state (sim-time, ids, counters) — never
    /// the wall clock — so probed streams stay byte-identical across reruns.
    pub fn emit(&mut self, event: Event) {
        if let Some(probe) = self.probe.as_deref_mut() {
            probe.on_event(event);
        }
    }

    /// Whether a telemetry probe is attached and enabled (lets handlers skip
    /// building events that would go nowhere).
    pub fn probed(&self) -> bool {
        self.probe.as_ref().is_some_and(|p| p.enabled())
    }

    /// Sends a one-hop local message, charged as one local transmission.
    pub fn send_local(&mut self, to: NodeId, message: Message) {
        self.tx.charge_local(1);
        let id = self.fresh_id();
        self.dispatch(to, message, ChargeKind::Local, id, 1);
    }

    /// Forwards a message one routing hop, charged as one routing
    /// transmission. Per-hop charges over a greedy round trip sum to exactly
    /// the lump `charge_routing(outbound + back)` of the shared-memory oracle.
    pub fn send_routed(&mut self, to: NodeId, message: Message) {
        self.tx.charge_routing(1);
        let id = self.fresh_id();
        self.dispatch(to, message, ChargeKind::Routed, id, 1);
    }

    /// Sends a message without charging any transmission: commit handshakes
    /// (the oracle's single-step double write never counted a transmission)
    /// and dead-end handoffs (the oracle's shared-memory fallback read). The
    /// message still travels through the queue and the ledger counts it.
    pub fn send_free(&mut self, to: NodeId, message: Message) {
        let id = self.fresh_id();
        self.dispatch(to, message, ChargeKind::Free, id, 1);
    }

    /// A fresh dedup id on the lossy path; 0 (never checked) when lossless.
    fn fresh_id(&mut self) -> u64 {
        if self.reliability.is_lossless() {
            0
        } else {
            *self.next_id += 1;
            *self.next_id
        }
    }

    /// Puts one attempt of a message on the wire. The draw order documented
    /// on the module is frozen here: latency, then drop (only if `drop > 0`),
    /// then duplicate (only if `duplicate > 0` and the message survived).
    pub(crate) fn dispatch(
        &mut self,
        to: NodeId,
        message: Message,
        charge: ChargeKind,
        id: u64,
        attempt: u32,
    ) {
        let delay = self.latency.sample(self.net_rng);
        self.ledger.sent += 1;
        self.ledger.in_flight_peak = self.ledger.in_flight_peak.max(self.ledger.in_flight());
        self.emit(Event::MessageDispatched {
            id,
            to: to.index() as u32,
            sim_time: self.now,
        });
        let rel = self.reliability;
        if rel.is_lossless() {
            self.queue.schedule(
                self.now + delay,
                Envelope {
                    to,
                    message,
                    id,
                    kind: EnvelopeKind::Deliver,
                },
            );
            return;
        }
        let dropped = rel.drop > 0.0 && self.net_rng.gen::<f64>() < rel.drop;
        if dropped {
            self.ledger.dropped += 1;
            self.emit(Event::MessageDropped {
                id,
                to: to.index() as u32,
                attempt,
                sim_time: self.now,
            });
            if attempt <= rel.retry.max_retries {
                // Exponential backoff: the k-th retransmission fires
                // timeout·backoff^(k-1) after the attempt it replaces.
                let pause = rel.retry.timeout * rel.retry.backoff.powi(attempt as i32 - 1);
                self.queue.schedule(
                    self.now + pause,
                    Envelope {
                        to,
                        message,
                        id,
                        kind: EnvelopeKind::Retry {
                            attempt: attempt + 1,
                            charge,
                        },
                    },
                );
            } else {
                self.ledger.rounds_abandoned += 1;
            }
            return;
        }
        self.queue.schedule(
            self.now + delay,
            Envelope {
                to,
                message,
                id,
                kind: EnvelopeKind::Deliver,
            },
        );
        if rel.duplicate > 0.0 && self.net_rng.gen::<f64>() < rel.duplicate {
            // The copy shares the original's delivery time (no second
            // latency draw) and lands right behind it in FIFO order; the
            // receiver's dedup makes it a no-op.
            self.ledger.duplicated += 1;
            self.ledger.sent += 1;
            self.ledger.in_flight_peak = self.ledger.in_flight_peak.max(self.ledger.in_flight());
            self.emit(Event::MessageDispatched {
                id,
                to: to.index() as u32,
                sim_time: self.now,
            });
            self.queue.schedule(
                self.now + delay,
                Envelope {
                    to,
                    message,
                    id,
                    kind: EnvelopeKind::Deliver,
                },
            );
        }
    }
}

/// A gossip protocol expressed as per-sensor actors: activations initiate
/// rounds, message handlers advance them. The scheduler owns time, the event
/// queue, and transmission/trace accounting; the protocol owns values and its
/// own round counters.
///
/// Handlers deliberately receive no activation RNG: the shared-memory oracle
/// consumes all of a tick's randomness inside the activation, so denying
/// handlers access to it makes stream divergence unrepresentable.
pub trait NetProtocol {
    /// A sensor's Poisson clock ticked: start a round (or record why not).
    fn on_activation(&mut self, node: NodeId, ctx: &mut NetContext<'_, '_>, rng: &mut dyn RngCore);

    /// A message addressed to `at` arrived.
    fn on_message(&mut self, at: NodeId, message: Message, ctx: &mut NetContext<'_, '_>);

    /// Current ℓ₂ error relative to the initial error (the stop metric).
    fn relative_error(&self) -> f64;

    /// Squared-domain error pair for the engine's convergence fast path.
    fn squared_error(&self) -> Option<SquaredError>;

    /// Display name; matches the shared-memory protocol it mirrors.
    fn name(&self) -> &str;

    /// Protocol counters (same keys as the shared-memory oracle).
    fn metrics(&self) -> Vec<(String, f64)>;
}

/// The simulated event-driven scheduler.
///
/// Construction mirrors `AsyncEngine::new`: the trace sampling stride
/// defaults to one point per `n` ticks and traces are thinned geometrically
/// above [`DEFAULT_MAX_TRACE_POINTS`].
#[derive(Debug, Clone)]
pub struct NetScheduler {
    n: usize,
    sample_every: u64,
    max_trace_points: usize,
}

impl NetScheduler {
    /// A scheduler for a network of `n` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (protocol constructors reject empty networks
    /// before a scheduler is ever built).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "the net scheduler needs at least one sensor");
        NetScheduler {
            n,
            sample_every: (n as u64).max(1),
            max_trace_points: DEFAULT_MAX_TRACE_POINTS,
        }
    }

    /// Runs `protocol` on a reliable wire with no node faults — the
    /// historical entry point; shorthand for [`NetScheduler::run_wire`] with
    /// a default (lossless) reliability block and no fault plan.
    pub fn run(
        &mut self,
        protocol: &mut dyn NetProtocol,
        stop: StopCondition,
        latency: LatencyModel,
        rng: &mut dyn RngCore,
        net_rng: &mut dyn RngCore,
    ) -> (EngineReport, MessageLedger) {
        self.run_wire(
            protocol,
            stop,
            latency,
            ReliabilitySpec::default(),
            None,
            rng,
            net_rng,
        )
    }

    /// Runs `protocol` exactly like [`NetScheduler::run_wire`] — same loop,
    /// same draws, same report — while streaming telemetry events into
    /// `probe`. `run_wire` is this with `probe = None`; the unprobed path
    /// never constructs an event.
    #[allow(clippy::too_many_arguments)]
    pub fn run_wire_probed(
        &mut self,
        protocol: &mut dyn NetProtocol,
        stop: StopCondition,
        latency: LatencyModel,
        reliability: ReliabilitySpec,
        faults: Option<&mut NetFaultPlan>,
        rng: &mut dyn RngCore,
        net_rng: &mut dyn RngCore,
        probe: Option<&mut (dyn Probe + '_)>,
    ) -> (EngineReport, MessageLedger) {
        self.run_wire_inner(
            protocol,
            stop,
            latency,
            reliability,
            faults,
            rng,
            net_rng,
            probe,
        )
    }

    /// Runs `protocol` under the given latency schedule, wire reliability,
    /// and optional node-fault plan until `stop` is met.
    ///
    /// `rng` is the activation stream (the runner's `"run"` trial stream);
    /// `net_rng` is the dedicated `"net"` trial stream consumed only by
    /// latency models that actually draw and by the drop/duplicate decisions
    /// of a lossy reliability block (see the module docs for the frozen draw
    /// order). `faults`, when present, must be pre-built from the dedicated
    /// `"faults"` trial stream; churn advances before each tick's activation
    /// and dead sensors consume their tick without acting, exactly like the
    /// shared-memory orchestrator.
    ///
    /// The loop replicates the shared-memory engine body statement for
    /// statement; the only additions are the two `deliver_due` drains —
    /// pending messages (and retransmission timers) due by the tick's exact
    /// time are processed *before* the tick's activation (network catches up
    /// to the clock), and the activation's own cascade is drained *after* it
    /// (instant messages land within their tick). Stop checks therefore
    /// observe exactly the oracle's transmission totals on the instant
    /// schedule.
    #[allow(clippy::too_many_arguments)]
    pub fn run_wire(
        &mut self,
        protocol: &mut dyn NetProtocol,
        stop: StopCondition,
        latency: LatencyModel,
        reliability: ReliabilitySpec,
        faults: Option<&mut NetFaultPlan>,
        rng: &mut dyn RngCore,
        net_rng: &mut dyn RngCore,
    ) -> (EngineReport, MessageLedger) {
        self.run_wire_inner(
            protocol,
            stop,
            latency,
            reliability,
            faults,
            rng,
            net_rng,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_wire_inner(
        &mut self,
        protocol: &mut dyn NetProtocol,
        stop: StopCondition,
        latency: LatencyModel,
        reliability: ReliabilitySpec,
        mut faults: Option<&mut NetFaultPlan>,
        rng: &mut dyn RngCore,
        net_rng: &mut dyn RngCore,
        mut probe: Option<&mut (dyn Probe + '_)>,
    ) -> (EngineReport, MessageLedger) {
        let mut clock = GlobalPoissonClock::new(self.n);
        let mut queue: EventQueue<Envelope> = EventQueue::new();
        let mut tx = TransmissionCounter::new();
        let mut ledger = MessageLedger::default();
        let mut trace = ConvergenceTrace::new();
        let mut ticks: u64 = 0;
        let mut stride = self.sample_every.max(1);
        let mut next_id: u64 = 0;
        // Per-sensor seen-id sets, allocated only on the lossy path (the
        // lossless path never assigns a nonzero id, so it never looks here).
        let mut seen: Vec<HashSet<u64>> = if reliability.is_lossless() {
            Vec::new()
        } else {
            vec![HashSet::new(); self.n]
        };

        trace.push(TracePoint {
            transmissions: 0,
            ticks: 0,
            relative_error: protocol.relative_error(),
        });

        let threshold_hi = protocol.squared_error().map(|sq| {
            let target = stop.epsilon * sq.initial;
            (target * target) * SQ_THRESHOLD_SLACK
        });

        let reason = loop {
            let clearly_above = match (threshold_hi, protocol.squared_error()) {
                (Some(hi), Some(sq)) => sq.current_sq > hi,
                _ => false,
            };
            if !clearly_above && protocol.relative_error() <= stop.epsilon {
                if let Some(probe) = probe.as_deref_mut() {
                    probe.on_event(Event::ConvergenceCrossed {
                        tick: ticks,
                        transmissions: tx.total(),
                        relative_error: protocol.relative_error(),
                    });
                }
                break StopReason::Converged;
            }
            if stop.max_ticks.is_some_and(|m| ticks >= m) {
                break StopReason::TickBudgetExhausted;
            }
            if stop.max_transmissions.is_some_and(|m| tx.total() >= m) {
                break StopReason::TransmissionBudgetExhausted;
            }

            let tick = clock.next_tick(&mut *rng);
            ticks = tick.index;

            // Churn applies before the tick's activation is processed, then a
            // dead sensor's tick is consumed with nothing else — the same
            // ordering as the shared-memory orchestrator.
            if let Some(plan) = faults.as_deref_mut() {
                plan.advance_schedule(tick.index);
            }
            let node_dead = faults
                .as_deref()
                .is_some_and(|plan| !plan.is_alive(tick.node.index()));
            if node_dead {
                if let Some(plan) = faults.as_deref_mut() {
                    plan.record_dead_activation();
                }
                if let Some(probe) = probe.as_deref_mut() {
                    probe.on_event(Event::ActivationDead {
                        tick: tick.index,
                        node: tick.node.index() as u32,
                    });
                }
            }
            let (alive, stale): (&[bool], &[bool]) = faults
                .as_deref()
                .map_or((&[][..], &[][..]), |plan| plan.slices());

            deliver_due(
                protocol,
                &mut queue,
                tick.time,
                latency,
                reliability,
                net_rng,
                &mut tx,
                &mut ledger,
                &mut next_id,
                &mut seen,
                alive,
                stale,
                probe.as_deref_mut(),
            );
            if !node_dead {
                if stale.get(tick.node.index()).copied().unwrap_or(false) {
                    if let Some(probe) = probe.as_deref_mut() {
                        probe.on_event(Event::ActivationStale {
                            tick: tick.index,
                            node: tick.node.index() as u32,
                        });
                    }
                }
                let mut ctx = NetContext {
                    now: tick.time,
                    latency,
                    reliability,
                    net_rng: &mut *net_rng,
                    queue: &mut queue,
                    tx: &mut tx,
                    ledger: &mut ledger,
                    next_id: &mut next_id,
                    alive,
                    stale,
                    probe: probe.as_deref_mut(),
                };
                protocol.on_activation(tick.node, &mut ctx, rng);
            }
            deliver_due(
                protocol,
                &mut queue,
                tick.time,
                latency,
                reliability,
                net_rng,
                &mut tx,
                &mut ledger,
                &mut next_id,
                &mut seen,
                alive,
                stale,
                probe.as_deref_mut(),
            );
            if let Some(probe) = probe.as_deref_mut() {
                probe.on_event(Event::TickCommitted {
                    tick: tick.index,
                    node: tick.node.index() as u32,
                    sim_time: tick.time,
                    transmissions: tx.total(),
                });
            }

            if tick.index.is_multiple_of(stride) {
                while trace.len() >= self.max_trace_points {
                    stride = stride.saturating_mul(2);
                    trace.thin_to_stride(stride);
                }
                if tick.index.is_multiple_of(stride) {
                    trace.push(TracePoint {
                        transmissions: tx.total(),
                        ticks: tick.index,
                        relative_error: protocol.relative_error(),
                    });
                }
            }
        };

        trace.push(TracePoint {
            transmissions: tx.total(),
            ticks,
            relative_error: protocol.relative_error(),
        });

        (
            EngineReport {
                reason,
                transmissions: tx,
                ticks,
                time: clock.now(),
                final_error: protocol.relative_error(),
                trace,
            },
            ledger,
        )
    }
}

/// Processes every queued event due at or before `horizon`, in (time, send
/// sequence) order. Deliveries run at the event's own time, so a handler's
/// cascaded sends schedule from that moment — an instant cascade keeps
/// landing inside the same drain. Retransmission timers re-charge and
/// re-dispatch; deliveries to dead sensors are discarded; redeliveries of an
/// already-processed id are suppressed (both still count as `delivered` —
/// they left the wire).
#[allow(clippy::too_many_arguments)]
fn deliver_due(
    protocol: &mut dyn NetProtocol,
    queue: &mut EventQueue<Envelope>,
    horizon: f64,
    latency: LatencyModel,
    reliability: ReliabilitySpec,
    net_rng: &mut dyn RngCore,
    tx: &mut TransmissionCounter,
    ledger: &mut MessageLedger,
    next_id: &mut u64,
    seen: &mut [HashSet<u64>],
    alive: &[bool],
    stale: &[bool],
    mut probe: Option<&mut (dyn Probe + '_)>,
) {
    while queue.peek_time().is_some_and(|t| t <= horizon) {
        let event = queue.pop().expect("peek_time saw a due event");
        let Envelope {
            to,
            message,
            id,
            kind,
        } = event.payload;
        match kind {
            EnvelopeKind::Retry { attempt, charge } => {
                ledger.retried += 1;
                match charge {
                    ChargeKind::Local => tx.charge_local(1),
                    ChargeKind::Routed => tx.charge_routing(1),
                    ChargeKind::Free => {}
                }
                if let Some(probe) = probe.as_deref_mut() {
                    probe.on_event(Event::MessageRetried {
                        id,
                        to: to.index() as u32,
                        attempt,
                        sim_time: event.time,
                    });
                }
                let mut ctx = NetContext {
                    now: event.time,
                    latency,
                    reliability,
                    net_rng: &mut *net_rng,
                    queue,
                    tx,
                    ledger,
                    next_id,
                    alive,
                    stale,
                    probe: probe.as_deref_mut(),
                };
                ctx.dispatch(to, message, charge, id, attempt);
            }
            EnvelopeKind::Deliver => {
                ledger.delivered += 1;
                if let Some(probe) = probe.as_deref_mut() {
                    // Discarded and suppressed deliveries still emit: like the
                    // ledger, the event records that the message left the
                    // wire, not that a handler ran.
                    probe.on_event(Event::MessageDelivered {
                        id,
                        to: to.index() as u32,
                        sim_time: event.time,
                    });
                }
                if !alive.get(to.index()).copied().unwrap_or(true) {
                    // The recipient died while the message was in flight: the
                    // delivery is discarded (a dead sensor cannot act), and —
                    // deliberately — not retried: the ARQ covers wire loss,
                    // not crashed endpoints, which churn may later revive.
                    continue;
                }
                if id != 0 && !seen[to.index()].insert(id) {
                    // Redelivery of an already-processed message (wire
                    // duplicate or a retransmission racing its original):
                    // exactly-once handlers, at-least-once wire.
                    continue;
                }
                let mut ctx = NetContext {
                    now: event.time,
                    latency,
                    reliability,
                    net_rng: &mut *net_rng,
                    queue,
                    tx,
                    ledger,
                    next_id,
                    alive,
                    stale,
                    probe: probe.as_deref_mut(),
                };
                protocol.on_message(to, message, &mut ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_sim::transport::RetryPolicy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A sensor pair that ping-pongs one message per activation, for ledger
    /// and drain-order checks without any gossip semantics.
    struct PingPong {
        bounces: u64,
        error: f64,
    }

    impl NetProtocol for PingPong {
        fn on_activation(
            &mut self,
            node: NodeId,
            ctx: &mut NetContext<'_, '_>,
            _rng: &mut dyn RngCore,
        ) {
            let peer = NodeId(1 - node.index());
            ctx.send_local(peer, Message::Commit { value: 1.0 });
        }

        fn on_message(&mut self, _at: NodeId, _message: Message, _ctx: &mut NetContext<'_, '_>) {
            self.bounces += 1;
            self.error *= 0.5;
        }

        fn relative_error(&self) -> f64 {
            self.error
        }

        fn squared_error(&self) -> Option<SquaredError> {
            None
        }

        fn name(&self) -> &str {
            "ping-pong"
        }

        fn metrics(&self) -> Vec<(String, f64)> {
            vec![("bounces".to_string(), self.bounces as f64)]
        }
    }

    fn ping_pong() -> PingPong {
        PingPong {
            bounces: 0,
            error: 1.0,
        }
    }

    #[test]
    fn instant_schedule_delivers_within_the_tick() {
        let mut protocol = ping_pong();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net_rng = ChaCha8Rng::seed_from_u64(2);
        let (report, ledger) = NetScheduler::new(2).run(
            &mut protocol,
            StopCondition::at_epsilon(0.1),
            LatencyModel::Instant,
            &mut rng,
            &mut net_rng,
        );
        assert!(report.converged());
        // One message per tick, delivered the same tick: nothing in flight.
        assert_eq!(ledger.sent, ledger.delivered);
        assert_eq!(ledger.in_flight_peak, 1);
        assert_eq!(ledger.in_flight(), 0);
        assert_eq!(ledger.sent, report.ticks);
        assert_eq!(protocol.bounces, report.ticks);
        // Each send_local charged one transmission.
        assert_eq!(report.transmissions.local(), report.ticks);
    }

    #[test]
    fn instant_and_fixed_schedules_never_touch_the_net_stream() {
        for latency in [LatencyModel::Instant, LatencyModel::Fixed(0.25)] {
            let mut protocol = ping_pong();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut net_rng = ChaCha8Rng::seed_from_u64(4);
            let mut untouched = net_rng.clone();
            let _ = NetScheduler::new(2).run(
                &mut protocol,
                StopCondition::at_epsilon(0.1),
                latency,
                &mut rng,
                &mut net_rng,
            );
            assert_eq!(net_rng.next_u64(), untouched.next_u64());
        }
    }

    #[test]
    fn fixed_latency_keeps_messages_in_flight_at_stop() {
        let mut protocol = ping_pong();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net_rng = ChaCha8Rng::seed_from_u64(6);
        // A latency much longer than the whole run: no message ever lands.
        let (report, ledger) = NetScheduler::new(2).run(
            &mut protocol,
            StopCondition::at_epsilon(0.1).with_max_ticks(10),
            LatencyModel::Fixed(1.0e6),
            &mut rng,
            &mut net_rng,
        );
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        assert_eq!(ledger.sent, 10);
        assert_eq!(ledger.delivered, 0);
        assert_eq!(ledger.in_flight(), 10);
        assert_eq!(ledger.in_flight_peak, 10);
        assert_eq!(protocol.bounces, 0);
    }

    #[test]
    fn total_loss_charges_every_attempt_then_abandons() {
        let mut protocol = ping_pong();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut net_rng = ChaCha8Rng::seed_from_u64(8);
        let reliability = ReliabilitySpec {
            drop: 0.999_999_999, // `gen::<f64>() < drop` fails with prob ~1e-9
            duplicate: 0.0,
            retry: RetryPolicy {
                timeout: 0.01,
                backoff: 2.0,
                max_retries: 2,
            },
        };
        let (report, ledger) = NetScheduler::new(2).run_wire(
            &mut protocol,
            StopCondition::at_epsilon(0.1).with_max_ticks(200),
            LatencyModel::Instant,
            reliability,
            None,
            &mut rng,
            &mut net_rng,
        );
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        // Everything dropped: nothing delivered, nothing left in flight
        // except retry timers (which are not messages).
        assert_eq!(ledger.delivered, 0);
        assert_eq!(ledger.dropped, ledger.sent);
        assert_eq!(protocol.bounces, 0);
        // One original per tick; the rest of `sent` are retransmissions.
        assert_eq!(ledger.retried, ledger.sent - report.ticks);
        // Charge-before-drop on every attempt: each send and each
        // retransmission charged one local transmission.
        assert_eq!(report.transmissions.local(), ledger.sent);
        // With 200 ticks and 2 retries per message, chains exhaust.
        assert!(ledger.rounds_abandoned > 0);
        // No chain can retire more attempts than the policy allows.
        assert!(ledger.retried <= report.ticks * 2);
        assert_eq!(ledger.duplicated, 0);
    }

    #[test]
    fn certain_duplication_is_suppressed_by_receivers() {
        let mut protocol = ping_pong();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut net_rng = ChaCha8Rng::seed_from_u64(10);
        let reliability = ReliabilitySpec {
            drop: 0.0,
            duplicate: 0.999_999_999,
            retry: RetryPolicy::default(),
        };
        let (report, ledger) = NetScheduler::new(2).run_wire(
            &mut protocol,
            StopCondition::at_epsilon(0.1),
            LatencyModel::Instant,
            reliability,
            None,
            &mut rng,
            &mut net_rng,
        );
        assert!(report.converged());
        // Every original got one wire copy; both left the wire, but the
        // handler ran exactly once per message id.
        assert_eq!(ledger.duplicated, report.ticks);
        assert_eq!(ledger.sent, 2 * report.ticks);
        assert_eq!(ledger.delivered, ledger.sent);
        assert_eq!(protocol.bounces, report.ticks);
        assert_eq!(ledger.in_flight(), 0);
        // Duplicate copies are uncharged: still one transmission per tick.
        assert_eq!(report.transmissions.local(), report.ticks);
    }

    #[test]
    fn moderate_loss_with_retries_still_converges() {
        let mut protocol = ping_pong();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut net_rng = ChaCha8Rng::seed_from_u64(12);
        let reliability = ReliabilitySpec {
            drop: 0.3,
            duplicate: 0.05,
            retry: RetryPolicy::default(),
        };
        let (report, ledger) = NetScheduler::new(2).run_wire(
            &mut protocol,
            // Deep target: enough bounces (~100) to exercise drops, retries,
            // and duplicates with certainty at these rates.
            StopCondition::at_epsilon(1e-30).with_max_ticks(100_000),
            LatencyModel::Instant,
            reliability,
            None,
            &mut rng,
            &mut net_rng,
        );
        assert!(report.converged(), "{:?}", report.reason);
        assert!(ledger.dropped > 0);
        assert!(ledger.retried > 0);
        assert_eq!(
            ledger.sent,
            ledger.delivered + ledger.dropped + ledger.in_flight()
        );
    }

    #[test]
    fn ledger_metrics_use_the_documented_keys() {
        let ledger = MessageLedger {
            sent: 5,
            delivered: 3,
            in_flight_peak: 2,
            ..MessageLedger::default()
        };
        let metrics = ledger.metrics();
        let keys: Vec<&str> = metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "messages_sent",
                "messages_delivered",
                "messages_in_flight_peak"
            ]
        );
        assert_eq!(ledger.in_flight(), 2);
    }

    #[test]
    fn reliability_metrics_use_the_documented_keys() {
        let ledger = MessageLedger {
            dropped: 4,
            duplicated: 3,
            retried: 2,
            rounds_abandoned: 1,
            ..MessageLedger::default()
        };
        let metrics = ledger.reliability_metrics();
        let keys: Vec<&str> = metrics.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "messages_dropped",
                "messages_duplicated",
                "messages_retried",
                "rounds_abandoned"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn zero_population_rejected() {
        let _ = NetScheduler::new(0);
    }
}
