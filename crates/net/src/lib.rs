//! Message-passing runtime: sensor actors, typed protocol messages, and a
//! deterministic simulated scheduler.
//!
//! The shared-memory protocols in `geogossip-core` model the paper's
//! assumption that communication is instantaneous relative to the mean clock
//! slot: an activated sensor reads and writes its partner's value directly.
//! This crate re-expresses pairwise and geographic gossip as **actors** that
//! only ever exchange explicit, typed [`Message`]s — route requests forwarded
//! hop by hop, value replies, commit handshakes — delivered by a
//! deterministic event-driven [`NetScheduler`] with a pluggable
//! [`LatencyModel`](geogossip_sim::LatencyModel).
//!
//! Two properties anchor the design:
//!
//! * **Instant-schedule oracle pin.** On the instant-lossless schedule the
//!   net runs are *bit-identical* to the shared-memory engine: same termini,
//!   same transmission counts, same stop tick, same final RNG states
//!   (`tests/net_parity.rs`). The shared-memory protocols stay the oracle;
//!   the message decomposition adds no behavior until latency does.
//! * **Stream-label discipline.** Latency draws consume a dedicated `"net"`
//!   seed stream ([`geogossip_sim::NET_STREAM_LABEL`]); activation randomness
//!   is untouched, and degenerate schedules (instant, fixed) draw nothing at
//!   all. The set of streams a configuration consumes is part of its schema.
//!
//! Non-instant schedules are where the crate earns its keep: messages carry
//! values that may be stale on arrival, random latencies reorder messages in
//! flight, and a per-trial [`MessageLedger`] reports the true message economy
//! (sent / delivered / in-flight peak) next to the protocol's transmission
//! charges. The sweep lab's `transport` axis measures how convergence and
//! cost degrade as mean latency grows.
//!
//! The wire itself can be unreliable: a `transport.reliability` block adds
//! per-message drop and duplication probabilities with a timeout / backoff /
//! retry-cap ARQ (see the frozen draw order on [`scheduler`]), and the
//! `faults` block's node churn and stale-value sensors run on this layer via
//! [`NetFaultPlan`] — rebuilt draw-for-draw from the same `"faults"` stream
//! the shared-memory orchestrator uses, so a `transport` key never changes
//! *which* sensors fail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod message;
pub mod protocols;
pub mod runtime;
pub mod scheduler;

pub use fault::NetFaultPlan;
pub use message::Message;
pub use protocols::{GeographicNet, PairwiseNet};
pub use runtime::NetRuntime;
pub use scheduler::{ChargeKind, Envelope, MessageLedger, NetContext, NetProtocol, NetScheduler};

#[cfg(test)]
mod parity_smoke {
    use super::*;
    use geogossip_core::prelude::PairwiseGossip;
    use geogossip_graph::GeometricGraph;
    use geogossip_sim::engine::{AsyncEngine, StopCondition};
    use geogossip_sim::transport::LatencyModel;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// In-crate smoke for the oracle pin (the full matrix lives in
    /// `tests/net_parity.rs`): pairwise on the instant schedule must
    /// reproduce the shared-memory engine bit for bit.
    #[test]
    fn instant_pairwise_matches_the_shared_memory_engine() {
        let mut placement = ChaCha8Rng::seed_from_u64(77);
        let positions = geogossip_geometry::sampling::sample_unit_square(64, &mut placement);
        let graph = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
        let mut values = vec![0.0; graph.len()];
        values[0] = graph.len() as f64;
        let stop = StopCondition::at_epsilon(0.1).with_max_ticks(500_000);

        let mut oracle_rng = ChaCha8Rng::seed_from_u64(99);
        let mut net_run_rng = oracle_rng.clone();

        let mut oracle = PairwiseGossip::new(&graph, values.clone()).unwrap();
        let oracle_report = AsyncEngine::new(graph.len()).run(&mut oracle, stop, &mut oracle_rng);

        let mut net = PairwiseNet::new(&graph, values).unwrap();
        let mut net_rng = ChaCha8Rng::seed_from_u64(1234);
        let (net_report, ledger) = NetScheduler::new(graph.len()).run(
            &mut net,
            stop,
            LatencyModel::Instant,
            &mut net_run_rng,
            &mut net_rng,
        );

        assert_eq!(net_report.reason, oracle_report.reason);
        assert_eq!(net_report.ticks, oracle_report.ticks);
        assert_eq!(net_report.time.to_bits(), oracle_report.time.to_bits());
        assert_eq!(
            net_report.final_error.to_bits(),
            oracle_report.final_error.to_bits()
        );
        assert_eq!(
            net_report.transmissions.total(),
            oracle_report.transmissions.total()
        );
        assert_eq!(net_report.trace.points(), oracle_report.trace.points());
        // Identical activation-stream consumption.
        for _ in 0..4 {
            assert_eq!(net_run_rng.next_u64(), oracle_rng.next_u64());
        }
        // Everything sent was delivered within its tick.
        assert_eq!(ledger.in_flight(), 0);
    }
}
