//! The [`TransportRuntime`] implementation plugged into the scenario runner.
//!
//! [`NetRuntime`] maps a protocol spec onto the message-passing actors,
//! mirroring the shared-memory registry's parameter validation (same known
//! keys, same unknown-selector wording), runs the [`NetScheduler`], and
//! returns the oracle-keyed metrics with the message ledger appended.

use crate::protocols::{GeographicNet, PairwiseNet};
use crate::scheduler::{MessageLedger, NetProtocol, NetScheduler};
use geogossip_graph::GeometricGraph;
use geogossip_routing::TargetSelector;
use geogossip_sim::engine::{EngineReport, StopCondition};
use geogossip_sim::scenario::ProtocolSpec;
use geogossip_sim::transport::{TransportRuntime, TransportSpec, TransportTrial};
use geogossip_sim::ProtocolError;
use rand::RngCore;

/// The message-passing runtime for the scenario runner's `transport` key.
///
/// Protocols with message-passing implementations: `pairwise` and
/// `geographic` (selectors `nearest-position` and `uniform-index`). The
/// hierarchical affine protocols are round-based — they do not run on the
/// asynchronous activation clock this runtime simulates — and
/// `rejection-sampled` partner selection is a shared-memory precomputation;
/// both are rejected with errors naming the offending spec path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetRuntime;

impl NetRuntime {
    /// Creates the runtime (stateless; one instance serves every trial).
    pub fn new() -> Self {
        NetRuntime
    }
}

fn finish(
    protocol: &dyn NetProtocol,
    report: EngineReport,
    ledger: MessageLedger,
) -> TransportTrial {
    let mut metrics = protocol.metrics();
    metrics.extend(ledger.metrics());
    TransportTrial {
        label: protocol.name().to_string(),
        report,
        rounds: None,
        metrics,
    }
}

impl TransportRuntime for NetRuntime {
    fn run_trial(
        &self,
        protocol: &ProtocolSpec,
        transport: &TransportSpec,
        graph: &GeometricGraph,
        values: Vec<f64>,
        stop: StopCondition,
        rng: &mut dyn RngCore,
        net_rng: &mut dyn RngCore,
    ) -> Result<TransportTrial, ProtocolError> {
        transport.validate()?;
        match protocol.name.as_str() {
            "pairwise" => {
                protocol.reject_unknown(&[])?;
                let mut net = PairwiseNet::new(graph, values)?;
                let (report, ledger) = NetScheduler::new(graph.len()).run(
                    &mut net,
                    stop,
                    transport.latency,
                    rng,
                    net_rng,
                );
                Ok(finish(&net, report, ledger))
            }
            "geographic" => {
                // Same known keys as the shared-memory registry builder, so a
                // spec that validates there validates here (and vice versa).
                protocol.reject_unknown(&["selector", "probes", "cap"])?;
                let selector = match protocol.text("selector", "nearest-position")?.as_str() {
                    "nearest-position" => TargetSelector::NearestToUniformPosition,
                    "uniform-index" => TargetSelector::UniformByIndex,
                    "rejection-sampled" => {
                        return Err(ProtocolError::invalid(
                            "protocol.selector",
                            "`rejection-sampled` has no message-passing implementation \
                             (its acceptance table is a shared-memory precomputation); \
                             use nearest-position or uniform-index, or drop the \
                             `transport` key",
                        ))
                    }
                    other => {
                        return Err(ProtocolError::invalid(
                            "selector",
                            format!(
                                "unknown selector `{other}` (known: nearest-position, \
                                 uniform-index, rejection-sampled)"
                            ),
                        ))
                    }
                };
                let mut net = GeographicNet::with_selector(graph, values, selector)?;
                let (report, ledger) = NetScheduler::new(graph.len()).run(
                    &mut net,
                    stop,
                    transport.latency,
                    rng,
                    net_rng,
                );
                Ok(finish(&net, report, ledger))
            }
            other => Err(ProtocolError::invalid(
                "transport",
                format!(
                    "protocol `{other}` has no message-passing implementation \
                     (available: pairwise, geographic)"
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_sim::transport::LatencyModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, seed: u64) -> GeometricGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let positions = geogossip_geometry::sampling::sample_unit_square(n, &mut rng);
        GeometricGraph::build_at_connectivity_radius(positions, 2.0)
    }

    fn spike(n: usize) -> Vec<f64> {
        let mut values = vec![0.0; n];
        values[0] = n as f64;
        values
    }

    fn run(
        protocol: &ProtocolSpec,
        transport: &TransportSpec,
        graph: &GeometricGraph,
    ) -> Result<TransportTrial, ProtocolError> {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut net_rng = ChaCha8Rng::seed_from_u64(12);
        NetRuntime::new().run_trial(
            protocol,
            transport,
            graph,
            spike(graph.len()),
            StopCondition::at_epsilon(0.25).with_max_ticks(200_000),
            &mut rng,
            &mut net_rng,
        )
    }

    #[test]
    fn pairwise_and_geographic_run_and_report_ledger_metrics() {
        let graph = graph(48, 1);
        for (spec, label) in [
            (ProtocolSpec::named("pairwise"), "pairwise (Boyd)"),
            (ProtocolSpec::named("geographic"), "geographic (Dimakis)"),
        ] {
            let trial = run(&spec, &TransportSpec::default(), &graph).unwrap();
            assert_eq!(trial.label, label);
            assert!(trial.report.converged());
            assert!(trial.rounds.is_none());
            let keys: Vec<&str> = trial.metrics.iter().map(|(k, _)| k.as_str()).collect();
            assert!(keys.contains(&"exchanges"));
            assert!(keys.contains(&"messages_sent"));
            assert!(keys.contains(&"messages_delivered"));
            assert!(keys.contains(&"messages_in_flight_peak"));
        }
    }

    #[test]
    fn unknown_protocols_and_selectors_name_the_spec_path() {
        let graph = graph(16, 2);
        let err = run(
            &ProtocolSpec::named("affine-complete"),
            &TransportSpec::default(),
            &graph,
        )
        .unwrap_err();
        assert!(err.to_string().contains("transport"), "{err}");
        assert!(err.to_string().contains("affine-complete"), "{err}");

        let err = run(
            &ProtocolSpec::named("geographic").with_text("selector", "rejection-sampled"),
            &TransportSpec::default(),
            &graph,
        )
        .unwrap_err();
        assert!(err.to_string().contains("protocol.selector"), "{err}");

        let err = run(
            &ProtocolSpec::named("geographic").with_text("selector", "bogus"),
            &TransportSpec::default(),
            &graph,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown selector `bogus`"),
            "{err}"
        );

        let err = run(
            &ProtocolSpec::named("pairwise").with_number("cap", 3.0),
            &TransportSpec::default(),
            &graph,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown parameter"), "{err}");
    }

    #[test]
    fn bad_transport_specs_are_rejected_before_running() {
        let graph = graph(16, 3);
        let bad = TransportSpec {
            latency: LatencyModel::Fixed(-1.0),
        };
        let err = run(&ProtocolSpec::named("pairwise"), &bad, &graph).unwrap_err();
        assert!(err.to_string().contains("transport.latency.fixed"), "{err}");
    }

    #[test]
    fn exponential_latency_still_converges_and_uses_the_net_stream() {
        let graph = graph(48, 4);
        let transport = TransportSpec {
            latency: LatencyModel::Exponential { mean: 0.001 },
        };
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut net_rng = ChaCha8Rng::seed_from_u64(22);
        let pristine = net_rng.clone();
        let trial = NetRuntime::new()
            .run_trial(
                &ProtocolSpec::named("pairwise"),
                &transport,
                &graph,
                spike(graph.len()),
                StopCondition::at_epsilon(0.25).with_max_ticks(200_000),
                &mut rng,
                &mut net_rng,
            )
            .unwrap();
        assert!(trial.report.converged());
        // The latency model drew from the dedicated net stream.
        let mut pristine = pristine;
        assert_ne!(net_rng.next_u64(), pristine.next_u64());
    }
}
