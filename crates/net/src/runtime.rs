//! The [`TransportRuntime`] implementation plugged into the scenario runner.
//!
//! [`NetRuntime`] maps a protocol spec onto the message-passing actors,
//! mirroring the shared-memory registry's parameter validation (same known
//! keys, same unknown-selector wording), builds the node-fault plan from the
//! dedicated `"faults"` trial stream when the spec asks for churn or stale
//! nodes, runs the [`NetScheduler`], and returns the oracle-keyed metrics
//! with the fault counters (when faulted) and the message ledger appended —
//! the unreliable-wire counters only when the reliability block is lossy, so
//! lossless runs keep the exact metric schema of a bare transport run.

use crate::fault::NetFaultPlan;
use crate::protocols::{GeographicNet, PairwiseNet};
use crate::scheduler::{MessageLedger, NetProtocol, NetScheduler};
use geogossip_graph::GeometricGraph;
use geogossip_routing::TargetSelector;
use geogossip_sim::engine::{EngineReport, StopCondition};
use geogossip_sim::fault::FaultSpec;
use geogossip_sim::scenario::ProtocolSpec;
use geogossip_sim::transport::{ReliabilitySpec, TransportRuntime, TransportSpec, TransportTrial};
use geogossip_sim::ProtocolError;
use geogossip_telemetry::Probe;
use rand::RngCore;
use rand_chacha::ChaCha8Rng;

/// The message-passing runtime for the scenario runner's `transport` key.
///
/// Protocols with message-passing implementations: `pairwise` and
/// `geographic` (selectors `nearest-position` and `uniform-index`). The
/// hierarchical affine protocols are round-based — they do not run on the
/// asynchronous activation clock this runtime simulates — and
/// `rejection-sampled` partner selection is a shared-memory precomputation;
/// both are rejected with errors naming the offending spec path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetRuntime;

impl NetRuntime {
    /// Creates the runtime (stateless; one instance serves every trial).
    pub fn new() -> Self {
        NetRuntime
    }
}

fn finish(
    protocol: &dyn NetProtocol,
    report: EngineReport,
    ledger: MessageLedger,
    plan: Option<&NetFaultPlan>,
    reliability: ReliabilitySpec,
) -> TransportTrial {
    let mut metrics = protocol.metrics();
    if let Some(plan) = plan {
        // Same keys, same order as the shared-memory orchestrator's metric
        // tail. Activation loss has no wire form (the schema rejects the
        // combination), so dropped_activations is always zero here.
        metrics.push(("dropped_activations".to_string(), 0.0));
        metrics.push((
            "dead_activations".to_string(),
            plan.dead_activations() as f64,
        ));
        metrics.push(("stale_nodes".to_string(), plan.stale_count() as f64));
    }
    metrics.extend(ledger.metrics());
    if !reliability.is_lossless() {
        metrics.extend(ledger.reliability_metrics());
    }
    TransportTrial {
        label: protocol.name().to_string(),
        report,
        rounds: None,
        metrics,
    }
}

impl TransportRuntime for NetRuntime {
    fn run_trial(
        &self,
        protocol: &ProtocolSpec,
        transport: &TransportSpec,
        faults: &FaultSpec,
        graph: &GeometricGraph,
        values: Vec<f64>,
        stop: StopCondition,
        rng: &mut dyn RngCore,
        net_rng: &mut dyn RngCore,
        fault_rng: ChaCha8Rng,
        probe: Option<&mut (dyn Probe + '_)>,
    ) -> Result<TransportTrial, ProtocolError> {
        transport.validate()?;
        if faults.drop_rate > 0.0 {
            // Defense in depth: `ScenarioSpec::validate` rejects this
            // combination before any trial runs; a direct caller gets the
            // same spec-path-named refusal.
            return Err(ProtocolError::invalid(
                "faults.drop-rate",
                "activation loss has no message-passing form; use \
                 `transport.reliability.drop` for wire-level loss",
            ));
        }
        let mut plan =
            (!faults.is_none()).then(|| NetFaultPlan::new(faults, graph.len(), fault_rng));
        match protocol.name.as_str() {
            "pairwise" => {
                protocol.reject_unknown(&[])?;
                let mut net = PairwiseNet::new(graph, values)?;
                let (report, ledger) = NetScheduler::new(graph.len()).run_wire_probed(
                    &mut net,
                    stop,
                    transport.latency,
                    transport.reliability,
                    plan.as_mut(),
                    rng,
                    net_rng,
                    probe,
                );
                Ok(finish(
                    &net,
                    report,
                    ledger,
                    plan.as_ref(),
                    transport.reliability,
                ))
            }
            "geographic" => {
                // Same known keys as the shared-memory registry builder, so a
                // spec that validates there validates here (and vice versa).
                protocol.reject_unknown(&["selector", "probes", "cap"])?;
                let selector = match protocol.text("selector", "nearest-position")?.as_str() {
                    "nearest-position" => TargetSelector::NearestToUniformPosition,
                    "uniform-index" => TargetSelector::UniformByIndex,
                    "rejection-sampled" => {
                        return Err(ProtocolError::invalid(
                            "protocol.selector",
                            "`rejection-sampled` has no message-passing implementation \
                             (its acceptance table is a shared-memory precomputation); \
                             use nearest-position or uniform-index, or drop the \
                             `transport` key",
                        ))
                    }
                    other => {
                        return Err(ProtocolError::invalid(
                            "selector",
                            format!(
                                "unknown selector `{other}` (known: nearest-position, \
                                 uniform-index, rejection-sampled)"
                            ),
                        ))
                    }
                };
                let mut net = GeographicNet::with_selector(graph, values, selector)?;
                let (report, ledger) = NetScheduler::new(graph.len()).run_wire_probed(
                    &mut net,
                    stop,
                    transport.latency,
                    transport.reliability,
                    plan.as_mut(),
                    rng,
                    net_rng,
                    probe,
                );
                Ok(finish(
                    &net,
                    report,
                    ledger,
                    plan.as_ref(),
                    transport.reliability,
                ))
            }
            other => Err(ProtocolError::invalid(
                "transport",
                format!(
                    "protocol `{other}` has no message-passing implementation \
                     (available: pairwise, geographic)"
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_sim::fault::ChurnEvent;
    use geogossip_sim::transport::{LatencyModel, RetryPolicy};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, seed: u64) -> GeometricGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let positions = geogossip_geometry::sampling::sample_unit_square(n, &mut rng);
        GeometricGraph::build_at_connectivity_radius(positions, 2.0)
    }

    fn spike(n: usize) -> Vec<f64> {
        let mut values = vec![0.0; n];
        values[0] = n as f64;
        values
    }

    fn run_faulted(
        protocol: &ProtocolSpec,
        transport: &TransportSpec,
        faults: &FaultSpec,
        graph: &GeometricGraph,
    ) -> Result<TransportTrial, ProtocolError> {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut net_rng = ChaCha8Rng::seed_from_u64(12);
        NetRuntime::new().run_trial(
            protocol,
            transport,
            faults,
            graph,
            spike(graph.len()),
            StopCondition::at_epsilon(0.25).with_max_ticks(200_000),
            &mut rng,
            &mut net_rng,
            ChaCha8Rng::seed_from_u64(13),
            None,
        )
    }

    fn run(
        protocol: &ProtocolSpec,
        transport: &TransportSpec,
        graph: &GeometricGraph,
    ) -> Result<TransportTrial, ProtocolError> {
        run_faulted(protocol, transport, &FaultSpec::default(), graph)
    }

    fn keys(trial: &TransportTrial) -> Vec<&str> {
        trial.metrics.iter().map(|(k, _)| k.as_str()).collect()
    }

    #[test]
    fn pairwise_and_geographic_run_and_report_ledger_metrics() {
        let graph = graph(48, 1);
        for (spec, label) in [
            (ProtocolSpec::named("pairwise"), "pairwise (Boyd)"),
            (ProtocolSpec::named("geographic"), "geographic (Dimakis)"),
        ] {
            let trial = run(&spec, &TransportSpec::default(), &graph).unwrap();
            assert_eq!(trial.label, label);
            assert!(trial.report.converged());
            assert!(trial.rounds.is_none());
            let keys = keys(&trial);
            assert!(keys.contains(&"exchanges"));
            assert!(keys.contains(&"messages_sent"));
            assert!(keys.contains(&"messages_delivered"));
            assert!(keys.contains(&"messages_in_flight_peak"));
            // Lossless, fault-free runs keep the historical metric schema.
            assert!(!keys.contains(&"messages_dropped"));
            assert!(!keys.contains(&"dead_activations"));
        }
    }

    #[test]
    fn lossy_reliability_appends_the_wire_counters() {
        let graph = graph(48, 5);
        let transport = TransportSpec {
            reliability: ReliabilitySpec {
                drop: 0.2,
                duplicate: 0.05,
                retry: RetryPolicy::default(),
            },
            ..TransportSpec::default()
        };
        let trial = run(&ProtocolSpec::named("pairwise"), &transport, &graph).unwrap();
        assert!(trial.report.converged());
        let keys = keys(&trial);
        for key in [
            "messages_dropped",
            "messages_duplicated",
            "messages_retried",
            "rounds_abandoned",
        ] {
            assert!(keys.contains(&key), "missing {key}: {keys:?}");
        }
        let dropped = trial
            .metrics
            .iter()
            .find(|(k, _)| k == "messages_dropped")
            .unwrap()
            .1;
        assert!(dropped > 0.0);
    }

    #[test]
    fn faulted_runs_append_the_oracle_fault_counters() {
        let graph = graph(48, 6);
        let faults = FaultSpec {
            drop_rate: 0.0,
            stale_fraction: 0.1,
            churn: vec![ChurnEvent {
                fraction: 0.2,
                at_tick: 50,
                rejoin_tick: Some(500),
            }],
        };
        let trial = run_faulted(
            &ProtocolSpec::named("geographic"),
            &TransportSpec::default(),
            &faults,
            &graph,
        )
        .unwrap();
        let keys = keys(&trial);
        for key in ["dropped_activations", "dead_activations", "stale_nodes"] {
            assert!(keys.contains(&key), "missing {key}: {keys:?}");
        }
        let stale = trial
            .metrics
            .iter()
            .find(|(k, _)| k == "stale_nodes")
            .unwrap()
            .1;
        assert_eq!(stale, (0.1f64 * 48.0).floor());
    }

    #[test]
    fn activation_loss_is_refused_by_the_runtime_itself() {
        let graph = graph(16, 7);
        let faults = FaultSpec {
            drop_rate: 0.5,
            stale_fraction: 0.0,
            churn: Vec::new(),
        };
        let err = run_faulted(
            &ProtocolSpec::named("pairwise"),
            &TransportSpec::default(),
            &faults,
            &graph,
        )
        .unwrap_err();
        assert!(err.to_string().contains("faults.drop-rate"), "{err}");
        assert!(
            err.to_string().contains("transport.reliability.drop"),
            "{err}"
        );
    }

    #[test]
    fn unknown_protocols_and_selectors_name_the_spec_path() {
        let graph = graph(16, 2);
        let err = run(
            &ProtocolSpec::named("affine-complete"),
            &TransportSpec::default(),
            &graph,
        )
        .unwrap_err();
        assert!(err.to_string().contains("transport"), "{err}");
        assert!(err.to_string().contains("affine-complete"), "{err}");

        let err = run(
            &ProtocolSpec::named("geographic").with_text("selector", "rejection-sampled"),
            &TransportSpec::default(),
            &graph,
        )
        .unwrap_err();
        assert!(err.to_string().contains("protocol.selector"), "{err}");

        let err = run(
            &ProtocolSpec::named("geographic").with_text("selector", "bogus"),
            &TransportSpec::default(),
            &graph,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown selector `bogus`"),
            "{err}"
        );

        let err = run(
            &ProtocolSpec::named("pairwise").with_number("cap", 3.0),
            &TransportSpec::default(),
            &graph,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown parameter"), "{err}");
    }

    #[test]
    fn bad_transport_specs_are_rejected_before_running() {
        let graph = graph(16, 3);
        let bad = TransportSpec::with_latency(LatencyModel::Fixed(-1.0));
        let err = run(&ProtocolSpec::named("pairwise"), &bad, &graph).unwrap_err();
        assert!(err.to_string().contains("transport.latency.fixed"), "{err}");

        let mut bad = TransportSpec::default();
        bad.reliability.drop = 1.5;
        let err = run(&ProtocolSpec::named("pairwise"), &bad, &graph).unwrap_err();
        assert!(
            err.to_string().contains("transport.reliability.drop"),
            "{err}"
        );
    }

    #[test]
    fn exponential_latency_still_converges_and_uses_the_net_stream() {
        let graph = graph(48, 4);
        let transport = TransportSpec::with_latency(LatencyModel::Exponential { mean: 0.001 });
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut net_rng = ChaCha8Rng::seed_from_u64(22);
        let pristine = net_rng.clone();
        let trial = NetRuntime::new()
            .run_trial(
                &ProtocolSpec::named("pairwise"),
                &transport,
                &FaultSpec::default(),
                &graph,
                spike(graph.len()),
                StopCondition::at_epsilon(0.25).with_max_ticks(200_000),
                &mut rng,
                &mut net_rng,
                ChaCha8Rng::seed_from_u64(23),
                None,
            )
            .unwrap();
        assert!(trial.report.converged());
        // The latency model drew from the dedicated net stream.
        let mut pristine = pristine;
        assert_ne!(net_rng.next_u64(), pristine.next_u64());
    }
}
