//! Message-passing actors for the pairwise and geographic gossip protocols.
//!
//! Each actor mirrors its shared-memory oracle (`geogossip_core::PairwiseGossip`,
//! `geogossip_core::GeographicGossip`) *exactly* on the instant-lossless
//! schedule: the same activation-stream RNG draws in the same order, the same
//! [`convex_average`] argument order, the same [`GossipState::set`] **write
//! order** (activated node first, partner second — the incremental error
//! accumulator makes write order bit-significant), the same transmission
//! charges, and the same counter semantics. `tests/net_parity.rs` pins all of
//! it against the oracle.
//!
//! Under non-instant schedules the decomposition changes behavior in exactly
//! the ways a real network would: values carried by messages can be stale by
//! the time they arrive, commits can overwrite writes that happened while the
//! round was in flight (so exact mass conservation is no longer guaranteed —
//! that loss *is* the measured degradation), and rounds still in flight when
//! the run stops are abandoned.

use crate::message::Message;
use crate::scheduler::{NetContext, NetProtocol};
use geogossip_core::prelude::convex_average;
use geogossip_core::GossipState;
use geogossip_geometry::point::{NodeId, Point};
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::{greedy_step, greedy_step_masked};
use geogossip_routing::TargetSelector;
use geogossip_sim::engine::SquaredError;
use geogossip_sim::ProtocolError;
use geogossip_telemetry::Event;
use rand::{Rng, RngCore};

/// Validation shared by both actors, mirroring the oracle constructors.
fn check_network(graph: &GeometricGraph, values: &[f64]) -> Result<(), ProtocolError> {
    if graph.is_empty() {
        return Err(ProtocolError::EmptyNetwork);
    }
    if values.len() != graph.len() {
        return Err(ProtocolError::ValueLengthMismatch {
            nodes: graph.len(),
            values: values.len(),
        });
    }
    Ok(())
}

/// Pairwise nearest-neighbor gossip (Boyd et al.) as message-passing actors.
///
/// A round is three messages: the activated sensor offers its value to a
/// uniform neighbor ([`Message::Exchange`], one local transmission), the
/// neighbor answers with the convex average without committing
/// ([`Message::AveragingReply`], one local transmission), and the activated
/// sensor commits first then releases the neighbor's commit
/// ([`Message::Commit`], uncharged). Total charge: `charge_local(2)`, like
/// the oracle; commit order: activated node before neighbor, like the
/// oracle's single-step double write.
pub struct PairwiseNet<'a> {
    graph: &'a GeometricGraph,
    state: GossipState,
    exchanges: u64,
    isolated_activations: u64,
}

impl<'a> PairwiseNet<'a> {
    /// Creates the actor set over `graph` with one initial value per sensor.
    pub fn new(graph: &'a GeometricGraph, values: Vec<f64>) -> Result<Self, ProtocolError> {
        check_network(graph, &values)?;
        Ok(PairwiseNet {
            graph,
            state: GossipState::new(values),
            exchanges: 0,
            isolated_activations: 0,
        })
    }

    /// Read access to the value state (for tests and inspection).
    pub fn state(&self) -> &GossipState {
        &self.state
    }
}

impl NetProtocol for PairwiseNet<'_> {
    fn on_activation(&mut self, node: NodeId, ctx: &mut NetContext<'_, '_>, rng: &mut dyn RngCore) {
        let neighbors = self.graph.neighbors(node);
        // Partner draw order mirrors the oracle's faulty step exactly: the
        // masked (count-live, gen_range, nth) draw runs only while some
        // sensor is dead, so fault-free runs keep the unmasked single draw.
        let v = if ctx.any_dead() {
            let live = neighbors
                .iter()
                .filter(|&&v| ctx.is_alive(v as usize))
                .count();
            if live == 0 {
                self.isolated_activations += 1;
                return;
            }
            let pick = rng.gen_range(0..live);
            neighbors
                .iter()
                .copied()
                .filter(|&v| ctx.is_alive(v as usize))
                .nth(pick)
                .expect("pick is below the live-neighbor count") as usize
        } else {
            if neighbors.is_empty() {
                self.isolated_activations += 1;
                return;
            }
            neighbors[rng.gen_range(0..neighbors.len())] as usize
        };
        ctx.send_local(
            NodeId(v),
            Message::Exchange {
                origin: node,
                value: self.state.value(node.index()),
            },
        );
    }

    fn on_message(&mut self, at: NodeId, message: Message, ctx: &mut NetContext<'_, '_>) {
        match message {
            Message::Exchange { origin, value } => {
                // Oracle argument order: activated node's value first.
                let (avg, _) = convex_average(value, self.state.value(at.index()));
                ctx.send_local(
                    origin,
                    Message::AveragingReply {
                        origin: at,
                        value: avg,
                    },
                );
            }
            Message::AveragingReply { origin, value } => {
                // A stale sensor skips its own write but still releases the
                // partner's commit — the oracle's stale-guarded double write.
                if !ctx.is_stale(at.index()) {
                    self.state.set(at.index(), value);
                }
                ctx.send_free(origin, Message::Commit { value });
            }
            Message::Commit { value } => {
                if !ctx.is_stale(at.index()) {
                    self.state.set(at.index(), value);
                }
                self.exchanges += 1;
            }
            other => unreachable!("pairwise actors never receive routing messages: {other:?}"),
        }
    }

    fn relative_error(&self) -> f64 {
        self.state.relative_error()
    }

    fn squared_error(&self) -> Option<SquaredError> {
        Some(SquaredError {
            current_sq: self.state.deviation_sq(),
            initial: self.state.initial_deviation(),
        })
    }

    fn name(&self) -> &str {
        "pairwise (Boyd)"
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("exchanges".to_string(), self.exchanges as f64),
            (
                "isolated_activations".to_string(),
                self.isolated_activations as f64,
            ),
        ]
    }
}

/// Geographic gossip (Dimakis et al.) as message-passing actors.
///
/// A round is a greedy-routed request forwarded hop by hop toward the target
/// ([`Message::RouteRequest`], one routing transmission per hop), a reply
/// carrying the terminus' value greedy-routed back ([`Message::RouteReply`],
/// one routing transmission per hop), and the commit handshake
/// ([`Message::Commit`], uncharged). Per-hop charges over the round trip sum
/// to the oracle's lump `charge_routing(outbound + back)`.
///
/// Route failures mirror the oracle's accounting: a node-addressed request
/// whose greedy walk dead-ends short of its destination counts one failed
/// route (the exchange still happens with the terminus), and a return walk
/// that dead-ends counts another — the oracle then completes the exchange
/// through shared memory, modeled here as an uncharged direct handoff.
pub struct GeographicNet<'a> {
    graph: &'a GeometricGraph,
    state: GossipState,
    selector: TargetSelector,
    exchanges: u64,
    failed_routes: u64,
}

impl<'a> GeographicNet<'a> {
    /// Creates the actor set with the paper's default partner selection
    /// (nearest node to a uniform position), mirroring
    /// `GeographicGossip::new`.
    pub fn new(graph: &'a GeometricGraph, values: Vec<f64>) -> Result<Self, ProtocolError> {
        GeographicNet::with_selector(graph, values, TargetSelector::NearestToUniformPosition)
    }

    /// Creates the actor set with the given partner-selection rule.
    ///
    /// Supported selectors: [`TargetSelector::NearestToUniformPosition`] and
    /// [`TargetSelector::UniformByIndex`]. The rejection-sampled selector is
    /// a shared-memory precomputation and has no message-passing form; the
    /// runtime rejects it before construction.
    pub fn with_selector(
        graph: &'a GeometricGraph,
        values: Vec<f64>,
        selector: TargetSelector,
    ) -> Result<Self, ProtocolError> {
        check_network(graph, &values)?;
        Ok(GeographicNet {
            graph,
            state: GossipState::new(values),
            selector,
            exchanges: 0,
            failed_routes: 0,
        })
    }

    /// Read access to the value state (for tests and inspection).
    pub fn state(&self) -> &GossipState {
        &self.state
    }

    /// One greedy hop toward `target`, detouring around dead sensors while
    /// any exist (an empty mask keeps the unmasked step, so fault-free runs
    /// are untouched). Iterating this reproduces the oracle's masked walk
    /// hop for hop.
    fn step(&self, from: NodeId, target: Point, alive: &[bool]) -> Option<NodeId> {
        if alive.is_empty() {
            greedy_step(self.graph, from, target)
        } else {
            greedy_step_masked(self.graph, from, target, alive)
        }
    }

    /// Starts the return leg from terminus `p` back to the activated sensor
    /// `s`, carrying `p`'s current value.
    fn begin_reply(&mut self, p: NodeId, s: NodeId, ctx: &mut NetContext<'_, '_>) {
        let reply = Message::RouteReply {
            origin: p,
            dest: s,
            value: self.state.value(p.index()),
        };
        match self.step(p, self.graph.position(s), ctx.alive_mask()) {
            Some(next) => ctx.send_routed(next, reply),
            None => {
                // Zero-hop dead end on the return walk: the oracle counts the
                // failed route and reads through shared memory (back.hops = 0,
                // nothing charged). Model the read as an uncharged handoff.
                self.failed_routes += 1;
                ctx.send_free(s, reply);
            }
        }
    }
}

impl NetProtocol for GeographicNet<'_> {
    fn on_activation(&mut self, node: NodeId, ctx: &mut NetContext<'_, '_>, rng: &mut dyn RngCore) {
        if self.graph.len() < 2 {
            return;
        }
        match &self.selector {
            TargetSelector::NearestToUniformPosition => {
                // Same two uniform draws as the oracle's target sample.
                let target = geogossip_geometry::sampling::uniform_point_in(
                    geogossip_geometry::unit_square(),
                    rng,
                );
                match self.step(node, target, ctx.alive_mask()) {
                    // The activated sensor is already the greedy terminus:
                    // the oracle's partner == s early return, uncharged.
                    None => {}
                    Some(next) => ctx.send_routed(
                        next,
                        Message::RouteRequest {
                            origin: node,
                            target,
                            dest: None,
                            hops: 1,
                        },
                    ),
                }
            }
            selector => {
                let Some(partner) = selector.draw(self.graph, node, rng) else {
                    return;
                };
                // The selector draw stays unmasked, like the oracle: a dead
                // sensor can be the addressed partner — the masked walk then
                // stops short and the route counts as failed.
                let target = self.graph.position(partner);
                match self.step(node, target, ctx.alive_mask()) {
                    None => {
                        // Dead end at hop zero: the terminus is the activated
                        // sensor itself, so the route is undelivered (partner
                        // is a distinct node) and the oracle then drops the
                        // round at its partner == s check, uncharged.
                        self.failed_routes += 1;
                        ctx.emit(Event::RouteResolved {
                            origin: node.index() as u32,
                            terminus: node.index() as u32,
                            hops: 0,
                            delivered: false,
                            sim_time: ctx.now(),
                        });
                    }
                    Some(next) => ctx.send_routed(
                        next,
                        Message::RouteRequest {
                            origin: node,
                            target,
                            dest: Some(partner),
                            hops: 1,
                        },
                    ),
                }
            }
        }
    }

    fn on_message(&mut self, at: NodeId, message: Message, ctx: &mut NetContext<'_, '_>) {
        match message {
            Message::RouteRequest {
                origin,
                target,
                dest,
                hops,
            } => match self.step(at, target, ctx.alive_mask()) {
                Some(next) => ctx.send_routed(
                    next,
                    Message::RouteRequest {
                        origin,
                        target,
                        dest,
                        hops: hops + 1,
                    },
                ),
                None => {
                    // `at` is the greedy terminus. A node-addressed route that
                    // stopped short of its destination is a failed delivery
                    // (the exchange still proceeds with the terminus).
                    let delivered = dest.is_none_or(|d| d == at);
                    if !delivered {
                        self.failed_routes += 1;
                    }
                    ctx.emit(Event::RouteResolved {
                        origin: origin.index() as u32,
                        terminus: at.index() as u32,
                        hops,
                        delivered,
                        sim_time: ctx.now(),
                    });
                    self.begin_reply(at, origin, ctx);
                }
            },
            Message::RouteReply {
                origin,
                dest,
                value,
            } => {
                if at == dest {
                    // The activated sensor completes the round: oracle
                    // argument order (its own value first) and oracle write
                    // order (itself first, partner second via the commit) —
                    // each write stale-guarded like the oracle's.
                    let (new_s, new_p) = convex_average(self.state.value(at.index()), value);
                    if !ctx.is_stale(at.index()) {
                        self.state.set(at.index(), new_s);
                    }
                    ctx.send_free(origin, Message::Commit { value: new_p });
                } else {
                    match self.step(at, self.graph.position(dest), ctx.alive_mask()) {
                        Some(next) => ctx.send_routed(
                            next,
                            Message::RouteReply {
                                origin,
                                dest,
                                value,
                            },
                        ),
                        None => {
                            // Return walk dead-ends mid-route: count the
                            // failure and hand off unchanged, like the
                            // oracle's shared-memory completion.
                            self.failed_routes += 1;
                            ctx.send_free(
                                dest,
                                Message::RouteReply {
                                    origin,
                                    dest,
                                    value,
                                },
                            );
                        }
                    }
                }
            }
            Message::Commit { value } => {
                if !ctx.is_stale(at.index()) {
                    self.state.set(at.index(), value);
                }
                self.exchanges += 1;
            }
            other => unreachable!("geographic actors never receive pairwise messages: {other:?}"),
        }
    }

    fn relative_error(&self) -> f64 {
        self.state.relative_error()
    }

    fn squared_error(&self) -> Option<SquaredError> {
        Some(SquaredError {
            current_sq: self.state.deviation_sq(),
            initial: self.state.initial_deviation(),
        })
    }

    fn name(&self) -> &str {
        "geographic (Dimakis)"
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("exchanges".to_string(), self.exchanges as f64),
            ("failed_routes".to_string(), self.failed_routes as f64),
        ]
    }
}
