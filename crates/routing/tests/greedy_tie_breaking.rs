//! Pins greedy tie-breaking: among neighbors **exactly** equidistant from the
//! target, the walk always forwards to the lowest neighbor index.
//!
//! The configurations are constructed, not sampled: ring nodes sit at dyadic
//! offsets mirrored around the target, so their squared distances are equal
//! bit-for-bit (not merely close), and the insertion order — hence the node
//! indices — is shuffled per case. This is the contract that keeps the
//! vectorized argmin scan (and any future scan) from silently changing
//! termini: pass 2 of the walk recovers the first index attaining the
//! minimum, CSR rows are sorted, so equal distances must resolve to the
//! lowest index. Both the production scan and the preserved scalar reference
//! are asserted against the same expectation.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::topology::wrap_delta;
use geogossip_geometry::{Point, Topology};
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::{route_terminus, route_terminus_reference};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Shuffles `items` deterministically (Fisher–Yates under a seeded ChaCha).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        items.swap(i, j);
    }
}

/// Builds the instance: `ring` positions exactly equidistant from `target`
/// plus one `source` farther away, insertion order shuffled by `seed`.
/// Returns the graph, the source id, and the ids of the ring nodes.
fn tie_instance(
    ring: Vec<Point>,
    source: Point,
    radius: f64,
    topology: Topology,
    seed: u64,
) -> (GeometricGraph, NodeId, Vec<NodeId>) {
    let mut tagged: Vec<(bool, Point)> = ring.into_iter().map(|p| (true, p)).collect();
    tagged.push((false, source));
    shuffle(&mut tagged, seed);
    let positions: Vec<Point> = tagged.iter().map(|&(_, p)| p).collect();
    let source_id = NodeId(tagged.iter().position(|&(is_ring, _)| !is_ring).unwrap());
    let ring_ids: Vec<NodeId> = tagged
        .iter()
        .enumerate()
        .filter(|(_, &(is_ring, _))| is_ring)
        .map(|(i, _)| NodeId(i))
        .collect();
    let graph = GeometricGraph::build_with_topology(positions, radius, topology);
    (graph, source_id, ring_ids)
}

/// Asserts the walk from `source` towards `target` forwards to the lowest
/// ring index in one hop and stops there (no node is closer than the ring),
/// on both the production scan and the scalar reference.
fn assert_lowest_index_wins(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    ring_ids: &[NodeId],
) {
    let expected = *ring_ids.iter().min_by_key(|id| id.index()).unwrap();
    let fast = route_terminus(graph, source, target);
    assert_eq!(
        fast.terminus, expected,
        "tie must resolve to the lowest neighbor index"
    );
    assert_eq!(fast.hops, 1, "the tie decides the first and only hop");
    let reference = route_terminus_reference(graph, source, target);
    assert_eq!(fast, reference, "fast scan diverged from scalar reference");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unit square: four (or eight, when `ka != kb`) nodes mirrored around
    /// the target at dyadic offsets `(±a, ±b)` are bitwise equidistant; the
    /// walk must pick the lowest index regardless of insertion order.
    #[test]
    fn equidistant_neighbors_resolve_to_lowest_index(
        ka in 1usize..33,
        kb in 1usize..33,
        seed in 0u64..10_000,
    ) {
        let a = ka as f64 / 256.0;
        let b = kb as f64 / 256.0;
        let target = Point::new(0.5, 0.5);
        let mut ring = vec![
            Point::new(0.5 + a, 0.5 + b),
            Point::new(0.5 + a, 0.5 - b),
            Point::new(0.5 - a, 0.5 + b),
            Point::new(0.5 - a, 0.5 - b),
        ];
        if ka != kb {
            ring.extend([
                Point::new(0.5 + b, 0.5 + a),
                Point::new(0.5 + b, 0.5 - a),
                Point::new(0.5 - b, 0.5 + a),
                Point::new(0.5 - b, 0.5 - a),
            ]);
        }
        // The offsets are exact in binary, so the squared distances tie
        // bit-for-bit — assert it rather than assume it.
        let d2: Vec<u64> = ring
            .iter()
            .map(|p| {
                let (dx, dy) = (p.x - target.x, p.y - target.y);
                (dx * dx + dy * dy).to_bits()
            })
            .collect();
        prop_assert!(d2.windows(2).all(|w| w[0] == w[1]), "ring is not a tie");

        // Source below the ring, strictly farther from the target; radius
        // comfortably connects it to every ring node.
        let source = Point::new(0.5, 0.25);
        let (graph, source_id, ring_ids) =
            tie_instance(ring, source, 0.45, Topology::UnitSquare, seed);
        assert_lowest_index_wins(&graph, source_id, target, &ring_ids);
    }

    /// Torus: the tie spans the seam — two nodes at `x = a` and two at
    /// `x = 1 − a` are wrapped-equidistant from a target on the seam — so the
    /// pin also covers the wrapped metric's folded deltas.
    #[test]
    fn equidistant_neighbors_across_the_seam_resolve_to_lowest_index(
        ka in 1usize..33,
        kb in 1usize..33,
        seed in 0u64..10_000,
    ) {
        let a = ka as f64 / 256.0;
        let b = kb as f64 / 256.0;
        let target = Point::new(0.0, 0.5);
        let ring = vec![
            Point::new(a, 0.5 + b),
            Point::new(a, 0.5 - b),
            Point::new(1.0 - a, 0.5 + b),
            Point::new(1.0 - a, 0.5 - b),
        ];
        let d2: Vec<u64> = ring
            .iter()
            .map(|p| {
                let dx = wrap_delta(p.x - target.x);
                let dy = wrap_delta(p.y - target.y);
                (dx * dx + dy * dy).to_bits()
            })
            .collect();
        prop_assert!(d2.windows(2).all(|w| w[0] == w[1]), "ring is not a tie");

        let source = Point::new(0.25, 0.5);
        let (graph, source_id, ring_ids) = tie_instance(ring, source, 0.45, Topology::Torus, seed);
        assert_lowest_index_wins(&graph, source_id, target, &ring_ids);
    }
}
