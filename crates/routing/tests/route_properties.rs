//! Property tests for the allocation-free routing fast path: on arbitrary
//! random instances and targets, `route_terminus` / `route_terminus_to_node` /
//! the scratch-buffer variant must agree exactly with the path-returning API,
//! and the chunked vectorizable argmin scan must agree exactly with the
//! preserved scalar reference walk (`route_terminus_reference`).

use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::{sample_unit_square, uniform_point_in};
use geogossip_geometry::unit_square;
use geogossip_geometry::Topology;
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::{
    round_trip, route_terminus, route_terminus_reference, route_terminus_to_node, route_to_node,
    route_to_position, route_to_position_into,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fast position-routing variant returns the same terminus and hop
    /// count as the path-returning one, for arbitrary graphs and targets.
    #[test]
    fn fast_position_route_matches_path_route(
        n in 2usize..300,
        seed in 0u64..1000,
        c in 0.8f64..2.5,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build_at_connectivity_radius(pts, c);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let mut scratch = Vec::new();
        for _ in 0..10 {
            let src = NodeId((seed as usize + n) % n);
            let target = uniform_point_in(unit_square(), &mut rng);
            let full = route_to_position(&g, src, target);
            let fast = route_terminus(&g, src, target);
            prop_assert_eq!(fast.terminus, full.terminus);
            prop_assert_eq!(fast.hops, full.hops);
            prop_assert_eq!(fast.transmissions(), full.transmissions());
            let buffered = route_to_position_into(&g, src, target, &mut scratch);
            prop_assert_eq!(buffered.terminus, full.terminus);
            prop_assert_eq!(buffered.hops, full.hops);
            prop_assert_eq!(&scratch, &full.path);
        }
    }

    /// The fast node-routing variant agrees with the path-returning one on
    /// terminus, hops, and the delivered flag.
    #[test]
    fn fast_node_route_matches_path_route(
        n in 2usize..300,
        seed in 0u64..1000,
        dst_pick in 0usize..10_000,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        // A slightly sub-critical radius keeps dead ends in the mix so the
        // `delivered` flag is exercised in both outcomes.
        let g = GeometricGraph::build_at_connectivity_radius(pts, 1.0);
        let src = NodeId(seed as usize % n);
        let dst = NodeId(dst_pick % n);
        let full = route_to_node(&g, src, dst);
        let (fast, delivered) = route_terminus_to_node(&g, src, dst);
        prop_assert_eq!(fast.terminus, full.terminus);
        prop_assert_eq!(fast.hops, full.hops);
        prop_assert_eq!(delivered, full.delivered);
    }

    /// The chunked, unrolled argmin scan is bit-identical to the preserved
    /// scalar reference walk — same terminus, same hop count — on arbitrary
    /// graphs (both topologies, dead ends included) and arbitrary targets.
    /// Degree sweeps past the scan's lane width in both directions, so the
    /// chunked body and the scalar remainder are both exercised.
    #[test]
    fn vectorized_scan_matches_scalar_reference(
        n in 2usize..300,
        seed in 0u64..1000,
        c in 0.8f64..2.5,
        torus in 0usize..2,
    ) {
        let topology = if torus == 1 { Topology::Torus } else { Topology::UnitSquare };
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        // Torus adjacency requires radius < 1/2; small n at a generous
        // connectivity constant can exceed it, so clamp.
        let radius = geogossip_geometry::connectivity_radius(n, c).min(0.49);
        let g = GeometricGraph::build_with_topology(pts, radius, topology);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfa57);
        for k in 0..12 {
            let src = NodeId((seed as usize + k) % n);
            let target = uniform_point_in(unit_square(), &mut rng);
            let fast = route_terminus(&g, src, target);
            let reference = route_terminus_reference(&g, src, target);
            prop_assert_eq!(fast, reference);
        }
    }

    /// Degrees beyond the walk's stack scratch capacity take the buffer-free
    /// fallback; it must agree with the reference exactly too. A radius of
    /// 0.9 on 600 nodes makes nearly every row wider than the buffer.
    #[test]
    fn dense_rows_beyond_scratch_capacity_match_reference(
        seed in 0u64..200,
    ) {
        let n = 600;
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build(pts, 0.9);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdee9);
        for k in 0..6 {
            let src = NodeId((seed as usize + k) % n);
            let target = uniform_point_in(unit_square(), &mut rng);
            let fast = route_terminus(&g, src, target);
            let reference = route_terminus_reference(&g, src, target);
            prop_assert_eq!(fast, reference);
        }
    }

    /// Round trips cost exactly the sum of the two one-way fast routes.
    #[test]
    fn round_trip_is_sum_of_both_legs(n in 2usize..200, seed in 0u64..500) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build_at_connectivity_radius(pts, 1.5);
        let a = NodeId(0);
        let b = NodeId(n - 1);
        let (tx, ok) = round_trip(&g, a, b);
        let out = route_to_node(&g, a, b);
        let back = route_to_node(&g, b, a);
        prop_assert_eq!(tx, out.hops + back.hops);
        prop_assert_eq!(ok, out.delivered && back.delivered);
    }
}
