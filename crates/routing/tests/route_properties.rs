//! Property tests for the allocation-free routing fast path: on arbitrary
//! random instances and targets, `route_terminus` / `route_terminus_to_node` /
//! the scratch-buffer variant must agree exactly with the path-returning API.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::{sample_unit_square, uniform_point_in};
use geogossip_geometry::unit_square;
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::{
    round_trip, route_terminus, route_terminus_to_node, route_to_node, route_to_position,
    route_to_position_into,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fast position-routing variant returns the same terminus and hop
    /// count as the path-returning one, for arbitrary graphs and targets.
    #[test]
    fn fast_position_route_matches_path_route(
        n in 2usize..300,
        seed in 0u64..1000,
        c in 0.8f64..2.5,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build_at_connectivity_radius(pts, c);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let mut scratch = Vec::new();
        for _ in 0..10 {
            let src = NodeId((seed as usize + n) % n);
            let target = uniform_point_in(unit_square(), &mut rng);
            let full = route_to_position(&g, src, target);
            let fast = route_terminus(&g, src, target);
            prop_assert_eq!(fast.terminus, full.terminus);
            prop_assert_eq!(fast.hops, full.hops);
            prop_assert_eq!(fast.transmissions(), full.transmissions());
            let buffered = route_to_position_into(&g, src, target, &mut scratch);
            prop_assert_eq!(buffered.terminus, full.terminus);
            prop_assert_eq!(buffered.hops, full.hops);
            prop_assert_eq!(&scratch, &full.path);
        }
    }

    /// The fast node-routing variant agrees with the path-returning one on
    /// terminus, hops, and the delivered flag.
    #[test]
    fn fast_node_route_matches_path_route(
        n in 2usize..300,
        seed in 0u64..1000,
        dst_pick in 0usize..10_000,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        // A slightly sub-critical radius keeps dead ends in the mix so the
        // `delivered` flag is exercised in both outcomes.
        let g = GeometricGraph::build_at_connectivity_radius(pts, 1.0);
        let src = NodeId(seed as usize % n);
        let dst = NodeId(dst_pick % n);
        let full = route_to_node(&g, src, dst);
        let (fast, delivered) = route_terminus_to_node(&g, src, dst);
        prop_assert_eq!(fast.terminus, full.terminus);
        prop_assert_eq!(fast.hops, full.hops);
        prop_assert_eq!(delivered, full.delivered);
    }

    /// Round trips cost exactly the sum of the two one-way fast routes.
    #[test]
    fn round_trip_is_sum_of_both_legs(n in 2usize..200, seed in 0u64..500) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build_at_connectivity_radius(pts, 1.5);
        let a = NodeId(0);
        let b = NodeId(n - 1);
        let (tx, ok) = round_trip(&g, a, b);
        let out = route_to_node(&g, a, b);
        let back = route_to_node(&g, b, a);
        prop_assert_eq!(tx, out.hops + back.hops);
        prop_assert_eq!(ok, out.delivered && back.delivered);
    }
}
