//! Seam-correct greedy routing on the torus.
//!
//! Before this fix, torus graphs wrapped their *adjacency* but greedy routing
//! still compared raw Euclidean distances, so a packet whose target sat just
//! across the seam was steered away from it and trekked the long way across
//! the square. With the routing metric threaded from the graph's topology:
//!
//! 1. seam pairs route across the seam in the wrapped-expected hop count,
//! 2. over a fixed placement, total torus hops never exceed total unit-square
//!    hops for the same source/target set (greedy is myopic, so a *single*
//!    pair may pay one extra hop when the wrapped path enters the target's
//!    neighborhood differently — the aggregate is the meaningful invariant,
//!    and it holds placement-by-placement, not just in expectation),
//! 3. `nearest_node` resolves targets across the seam to the wrapped-nearest
//!    sensor.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::{connectivity_radius, Point, Topology};
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::{route_terminus, route_terminus_to_node, route_to_node};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A chain of sensors along the bottom edge: dense enough to be connected at
/// radius 0.12, with the two ends adjacent only across the seam.
fn seam_chain() -> Vec<Point> {
    (0..10)
        .map(|i| Point::new(0.05 + 0.1 * i as f64, 0.5))
        .collect()
}

#[test]
fn seam_pair_routes_across_the_seam_not_around() {
    let pts = seam_chain();
    let torus = GeometricGraph::build_with_topology(pts.clone(), 0.12, Topology::Torus);
    // Ends 0 (x=0.05) and 9 (x=0.95) are wrapped-adjacent.
    assert!(torus.are_adjacent(NodeId(0), NodeId(9)));
    let out = route_to_node(&torus, NodeId(0), NodeId(9));
    assert!(out.delivered);
    assert_eq!(out.hops, 1, "should hop straight across the seam");
    // On the unit square the same pair is 9 hops down the chain.
    let planar = GeometricGraph::build_with_topology(pts, 0.12, Topology::UnitSquare);
    let planar_out = route_to_node(&planar, NodeId(0), NodeId(9));
    assert!(planar_out.delivered);
    assert_eq!(planar_out.hops, 9);
}

#[test]
fn torus_routing_is_monotone_in_wrapped_distance() {
    let n = 500;
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(7));
    let r = connectivity_radius(n, 2.0);
    let g = GeometricGraph::build_with_topology(pts, r, Topology::Torus);
    for k in 0..40usize {
        let src = NodeId((k * 29) % n);
        let dst = NodeId((k * 53 + 11) % n);
        if src == dst {
            continue;
        }
        let target = g.position(dst);
        let out = route_to_node(&g, src, dst);
        let mut prev = f64::INFINITY;
        for &node in &out.path {
            let d = Topology::Torus.distance(g.position(node), target);
            assert!(
                d < prev + 1e-15,
                "torus greedy path moved away from the target in wrapped distance"
            );
            prev = d;
        }
    }
}

#[test]
fn torus_total_hops_never_exceed_unit_square_total_per_placement() {
    // Same placements, same radius, same source/target pairs: the torus walk
    // (wrapped metric + seam edges) must not spend more hops in total than
    // the unit-square walk. Deterministic seeds make this a pinned property
    // rather than a statistical one.
    for seed in 0..30u64 {
        let n = 400;
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let r = connectivity_radius(n, 2.0);
        let planar = GeometricGraph::build_with_topology(pts.clone(), r, Topology::UnitSquare);
        let torus = GeometricGraph::build_with_topology(pts, r, Topology::Torus);
        let mut planar_hops = 0usize;
        let mut torus_hops = 0usize;
        for k in 0..60usize {
            let src = NodeId((k * 17) % n);
            let dst = NodeId((k * 41 + 7) % n);
            if src == dst {
                continue;
            }
            planar_hops += route_terminus_to_node(&planar, src, dst).0.hops;
            torus_hops += route_terminus_to_node(&torus, src, dst).0.hops;
        }
        assert!(
            torus_hops <= planar_hops,
            "seed {seed}: torus routing spent {torus_hops} hops vs {planar_hops} on the square"
        );
    }
}

#[test]
fn nearest_node_wraps_on_the_torus() {
    let pts = vec![Point::new(0.9, 0.5), Point::new(0.3, 0.5)];
    let planar = GeometricGraph::build_with_topology(pts.clone(), 0.1, Topology::UnitSquare);
    let torus = GeometricGraph::build_with_topology(pts, 0.1, Topology::Torus);
    // A query just inside the left edge: Euclidean-nearest is node 1 (0.3),
    // wrapped-nearest is node 0 (0.9, at wrapped distance 0.15).
    let q = Point::new(0.05, 0.5);
    assert_eq!(planar.nearest_node(q), Some(NodeId(1)));
    assert_eq!(torus.nearest_node(q), Some(NodeId(0)));
}

#[test]
fn torus_route_to_position_crosses_the_seam() {
    // Routing towards a *position* across the seam must move towards it in
    // wrapped distance and stop at the wrapped-nearest reachable node.
    let pts = seam_chain();
    let torus = GeometricGraph::build_with_topology(pts, 0.12, Topology::Torus);
    let target = Point::new(0.98, 0.5);
    let out = route_terminus(&torus, NodeId(0), target);
    // Node 9 at x=0.95 is wrapped-closest to 0.98; the seam hop reaches it
    // directly instead of walking the whole chain.
    assert_eq!(out.terminus, NodeId(9));
    assert_eq!(out.hops, 1);
}
