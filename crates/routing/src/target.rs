//! Selection of a (roughly) uniformly random node by geographic addressing.
//!
//! A sensor cannot draw a uniformly random *node* directly — it only knows its
//! own position. Geographic gossip (Dimakis et al. [5], inherited by the
//! paper) instead draws a uniformly random *position* in the unit square and
//! contacts the node nearest to it. The probability of contacting node `v` is
//! then proportional to the area of `v`'s Voronoi cell, which is only
//! approximately uniform; rejection sampling (accepting a contacted node with
//! probability inversely proportional to its Voronoi area) flattens the
//! distribution. Experiment E9 quantifies both variants.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::uniform_point_in;
use geogossip_geometry::unit_square;
use geogossip_graph::GeometricGraph;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Strategy for drawing the gossip partner of a round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TargetSelector {
    /// Contact the node nearest a uniformly random position (no correction).
    /// The node distribution is proportional to Voronoi-cell areas.
    NearestToUniformPosition,
    /// Rejection-sampled variant: a contacted node is accepted with
    /// probability `min_area_estimate / own_area_estimate`, where the area
    /// estimates are Monte-Carlo Voronoi masses computed once per graph. Up to
    /// `max_attempts` positions are tried before giving up and accepting the
    /// last candidate (so a partner is always produced).
    RejectionSampled {
        /// Per-node acceptance probabilities in `[0, 1]`.
        acceptance: Vec<f64>,
        /// Maximum number of rejected candidates before accepting anyway.
        max_attempts: usize,
    },
    /// Contact a node drawn uniformly at random by index. This needs global
    /// knowledge that real sensors do not have; it is provided as the ideal
    /// reference the other two are compared against in experiment E9.
    UniformByIndex,
}

impl TargetSelector {
    /// Builds the rejection-sampled selector for a graph, estimating each
    /// node's Voronoi mass with `samples` uniform probe positions.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or `samples` is zero.
    pub fn rejection_sampled<R: Rng + ?Sized>(
        graph: &GeometricGraph,
        samples: usize,
        max_attempts: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            !graph.is_empty(),
            "cannot build a target selector for an empty graph"
        );
        assert!(samples > 0, "need at least one probe sample");
        let mut hits = vec![0usize; graph.len()];
        for _ in 0..samples {
            let p = uniform_point_in(unit_square(), rng);
            if let Some(node) = graph.nearest_node(p) {
                hits[node.index()] += 1;
            }
        }
        // Acceptance probability inversely proportional to estimated Voronoi
        // mass; nodes never hit get acceptance 1 (they are already rare).
        let min_positive = hits
            .iter()
            .copied()
            .filter(|&h| h > 0)
            .min()
            .unwrap_or(1)
            .max(1) as f64;
        let acceptance = hits
            .iter()
            .map(|&h| {
                if h == 0 {
                    1.0
                } else {
                    (min_positive / h as f64).min(1.0)
                }
            })
            .collect();
        TargetSelector::RejectionSampled {
            acceptance,
            max_attempts: max_attempts.max(1),
        }
    }

    /// Draws a gossip partner for `caller`.
    ///
    /// The partner is always distinct from `caller` (candidates equal to the
    /// caller are redrawn), and `None` is returned only when the graph has
    /// fewer than two nodes.
    pub fn draw<R: Rng + ?Sized>(
        &self,
        graph: &GeometricGraph,
        caller: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        if graph.len() < 2 {
            return None;
        }
        match self {
            TargetSelector::UniformByIndex => loop {
                let idx = rng.gen_range(0..graph.len());
                if idx != caller.index() {
                    return Some(NodeId(idx));
                }
            },
            TargetSelector::NearestToUniformPosition => loop {
                let p = uniform_point_in(unit_square(), rng);
                let node = graph.nearest_node(p)?;
                if node != caller {
                    return Some(node);
                }
            },
            TargetSelector::RejectionSampled {
                acceptance,
                max_attempts,
            } => {
                let mut last = None;
                for _ in 0..*max_attempts {
                    let p = uniform_point_in(unit_square(), rng);
                    let node = graph.nearest_node(p)?;
                    if node == caller {
                        continue;
                    }
                    last = Some(node);
                    if rng.gen::<f64>() <= acceptance[node.index()] {
                        return Some(node);
                    }
                }
                // Fall back to the last candidate (or any non-caller node) so
                // the protocol always makes progress.
                last.or_else(|| (0..graph.len()).map(NodeId).find(|&v| v != caller))
            }
        }
    }
}

/// Empirical distribution of drawn partners, used by experiment E9 to compare
/// selectors against the uniform ideal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetStats {
    /// Number of draws per node.
    pub counts: Vec<usize>,
    /// Total number of draws.
    pub total: usize,
}

impl TargetStats {
    /// Collects `draws` partner selections made by `caller` under `selector`.
    pub fn collect<R: Rng + ?Sized>(
        graph: &GeometricGraph,
        selector: &TargetSelector,
        caller: NodeId,
        draws: usize,
        rng: &mut R,
    ) -> Self {
        let mut counts = vec![0usize; graph.len()];
        let mut total = 0usize;
        for _ in 0..draws {
            if let Some(node) = selector.draw(graph, caller, rng) {
                counts[node.index()] += 1;
                total += 1;
            }
        }
        TargetStats { counts, total }
    }

    /// Ratio of the maximum per-node frequency to the uniform frequency
    /// `1/(n-1)`; 1.0 is perfectly uniform, larger is more skewed.
    pub fn max_over_uniform(&self, caller: NodeId) -> f64 {
        let n = self.counts.len();
        if n < 2 || self.total == 0 {
            return 1.0;
        }
        let uniform = self.total as f64 / (n - 1) as f64;
        self.counts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != caller.index())
            .map(|(_, &c)| c as f64 / uniform)
            .fold(0.0, f64::max)
    }

    /// Chi-square-style dispersion statistic against the uniform distribution
    /// over the `n − 1` possible partners, normalised by the number of
    /// categories (≈1 when the draws are uniform).
    pub fn normalized_chi_square(&self, caller: NodeId) -> f64 {
        let n = self.counts.len();
        if n < 2 || self.total == 0 {
            return 0.0;
        }
        let expected = self.total as f64 / (n - 1) as f64;
        let chi: f64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != caller.index())
            .map(|(_, &c)| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        chi / (n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, 2.0)
    }

    #[test]
    fn draws_never_return_the_caller() {
        let g = graph(100, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let selectors = vec![
            TargetSelector::UniformByIndex,
            TargetSelector::NearestToUniformPosition,
            TargetSelector::rejection_sampled(&g, 2000, 10, &mut rng),
        ];
        for sel in &selectors {
            for _ in 0..200 {
                let v = sel.draw(&g, NodeId(5), &mut rng).unwrap();
                assert_ne!(v, NodeId(5));
            }
        }
    }

    #[test]
    fn single_node_graph_has_no_partner() {
        use geogossip_geometry::Point;
        let g = GeometricGraph::build(vec![Point::new(0.5, 0.5)], 0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(TargetSelector::UniformByIndex
            .draw(&g, NodeId(0), &mut rng)
            .is_none());
    }

    #[test]
    fn uniform_by_index_is_nearly_uniform() {
        let g = graph(50, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let stats = TargetStats::collect(
            &g,
            &TargetSelector::UniformByIndex,
            NodeId(0),
            20_000,
            &mut rng,
        );
        assert!(stats.max_over_uniform(NodeId(0)) < 1.3);
        assert!(stats.normalized_chi_square(NodeId(0)) < 2.0);
    }

    #[test]
    fn rejection_sampling_reduces_skew() {
        let g = graph(200, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let plain = TargetStats::collect(
            &g,
            &TargetSelector::NearestToUniformPosition,
            NodeId(0),
            30_000,
            &mut rng,
        );
        let rejection = TargetSelector::rejection_sampled(&g, 50_000, 20, &mut rng);
        let corrected = TargetStats::collect(&g, &rejection, NodeId(0), 30_000, &mut rng);
        let skew_plain = corrected_skew(&plain);
        let skew_corrected = corrected_skew(&corrected);
        assert!(
            skew_corrected <= skew_plain,
            "rejection sampling should not increase dispersion: {skew_corrected} > {skew_plain}"
        );
    }

    fn corrected_skew(stats: &TargetStats) -> f64 {
        stats.normalized_chi_square(NodeId(0))
    }

    #[test]
    fn stats_totals_match_draw_count() {
        let g = graph(60, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let stats = TargetStats::collect(
            &g,
            &TargetSelector::UniformByIndex,
            NodeId(1),
            500,
            &mut rng,
        );
        assert_eq!(stats.total, 500);
        assert_eq!(stats.counts.iter().sum::<usize>(), 500);
        assert_eq!(stats.counts[1], 0);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn rejection_selector_rejects_empty_graph() {
        let g = GeometricGraph::build(Vec::new(), 0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let _ = TargetSelector::rejection_sampled(&g, 100, 5, &mut rng);
    }
}
