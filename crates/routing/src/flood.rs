//! Flooding restricted to a cell of the hierarchical partition.
//!
//! The paper's `Activate.square(s)` and `Deactivate.square(s)` subroutines
//! deliver a control bit ("switch on"/"switch off") to every member of a
//! square, either by flooding (level-1 squares) or by geographic routing to
//! the child leaders (higher levels). Flooding a square of `m` members costs
//! `Θ(m)` transmissions: every member retransmits the control packet once.

use geogossip_geometry::point::NodeId;
use geogossip_graph::GeometricGraph;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Result of flooding a control packet within a restricted member set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodOutcome {
    /// The node the flood started from.
    pub source: NodeId,
    /// Members actually reached (including the source).
    pub reached: Vec<NodeId>,
    /// Members of the cell that could not be reached without leaving the cell.
    pub unreached: Vec<NodeId>,
    /// Number of one-hop transmissions used (each reached node broadcasts once).
    pub transmissions: usize,
}

impl FloodOutcome {
    /// Whether every member of the cell received the control packet.
    pub fn complete(&self) -> bool {
        self.unreached.is_empty()
    }
}

/// Floods a control packet from `source` to every node in `members`, using
/// only edges of `graph` whose both endpoints belong to `members`.
///
/// Every node that receives the packet rebroadcasts it exactly once, so the
/// transmission count equals the number of reached nodes (the source included).
/// Cell members that are not connected to the source *within the cell* are
/// listed in `unreached`; the caller decides whether that is an error (the
/// paper assumes cells are internally connected w.h.p. at the standard radius).
///
/// # Panics
///
/// Panics if `source` is not contained in `members` or is out of range for the
/// graph.
pub fn flood_cell(graph: &GeometricGraph, members: &[usize], source: NodeId) -> FloodOutcome {
    assert!(
        members.contains(&source.index()),
        "flood source must be a member of the flooded cell"
    );
    let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
    let mut reached_set = std::collections::HashSet::new();
    let mut reached = Vec::new();
    let mut queue = VecDeque::new();
    reached_set.insert(source.index());
    reached.push(source);
    queue.push_back(source.index());
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(NodeId(u)) {
            let v = v as usize;
            if member_set.contains(&v) && reached_set.insert(v) {
                reached.push(NodeId(v));
                queue.push_back(v);
            }
        }
    }
    let unreached: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|m| !reached_set.contains(m))
        .map(NodeId)
        .collect();
    let transmissions = reached.len();
    FloodOutcome {
        source,
        reached,
        unreached,
        transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use geogossip_geometry::{PartitionConfig, SquarePartition};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, seed: u64) -> (GeometricGraph, SquarePartition) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let part = SquarePartition::build(&pts, PartitionConfig::practical(n));
        let g = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
        (g, part)
    }

    #[test]
    fn flood_reaches_whole_connected_cell() {
        let (g, part) = setup(1200, 1);
        // Use a top-level cell: large enough to be internally connected w.h.p.
        let (_, cell) = part
            .cells_at_depth(1)
            .find(|(_, c)| !c.members().is_empty())
            .unwrap();
        let leader = cell.leader().unwrap();
        let out = flood_cell(&g, cell.members(), leader);
        assert!(out.complete(), "{} members unreached", out.unreached.len());
        assert_eq!(out.transmissions, cell.members().len());
    }

    #[test]
    fn flood_never_leaves_the_member_set() {
        let (g, part) = setup(800, 2);
        let (_, cell) = part
            .cells_at_depth(1)
            .find(|(_, c)| c.members().len() > 3)
            .unwrap();
        let leader = cell.leader().unwrap();
        let out = flood_cell(&g, cell.members(), leader);
        for node in &out.reached {
            assert!(cell.members().contains(&node.index()));
        }
    }

    #[test]
    fn flood_of_singleton_cell_costs_one_transmission() {
        let (g, _) = setup(50, 3);
        let out = flood_cell(&g, &[7], NodeId(7));
        assert!(out.complete());
        assert_eq!(out.transmissions, 1);
        assert_eq!(out.reached, vec![NodeId(7)]);
    }

    #[test]
    fn disconnected_members_are_reported_unreached() {
        use geogossip_geometry::Point;
        // Two members far apart with a tiny radius: the flood cannot bridge.
        let pts = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)];
        let g = GeometricGraph::build(pts, 0.05);
        let out = flood_cell(&g, &[0, 1], NodeId(0));
        assert!(!out.complete());
        assert_eq!(out.unreached, vec![NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "must be a member")]
    fn source_outside_cell_is_rejected() {
        let (g, _) = setup(50, 4);
        let _ = flood_cell(&g, &[1, 2, 3], NodeId(0));
    }
}
