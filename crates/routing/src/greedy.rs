//! Greedy geographic routing.
//!
//! A packet at node `u` headed for target position `t` is forwarded to the
//! neighbor of `u` that is closest to `t`, provided that neighbor is strictly
//! closer to `t` than `u` itself; otherwise the packet stops. On a geometric
//! random graph at the connectivity radius this succeeds w.h.p. and uses
//! `O(sqrt(n / log n))` hops (Dimakis et al., cited as [5]; the paper uses the
//! coarser `O(√n)` bound). Experiment E5 measures the constant.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::Point;
use geogossip_graph::GeometricGraph;
use serde::{Deserialize, Serialize};

/// Result of routing one packet.
///
/// `transmissions` counts one transmission per hop actually taken; a routing
/// round-trip (request out, reply back) therefore costs
/// `2 × transmissions` when both directions succeed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// The node the packet started at.
    pub source: NodeId,
    /// The node the packet stopped at.
    pub terminus: NodeId,
    /// Whether the packet reached the intended destination.
    pub delivered: bool,
    /// Number of hops taken (= transmissions used).
    pub hops: usize,
    /// The full path, including source and terminus.
    pub path: Vec<NodeId>,
}

impl RouteOutcome {
    /// Number of one-hop transmissions consumed by this routing.
    pub fn transmissions(&self) -> usize {
        self.hops
    }
}

/// Routes a packet from `source` towards the *position* `target` and stops at
/// the node closest to it that greedy forwarding can reach.
///
/// This is the primitive used by geographic gossip: the sender does not know
/// which node is nearest the target position; the packet simply stops when no
/// neighbor makes progress, and the stopping node is the contacted partner.
/// `delivered` is `true` whenever the walk made at least the source's best
/// effort (it is only `false` if the source itself has no position, which
/// cannot happen here), so callers interested in "did we reach the globally
/// nearest node" should use [`route_to_node`] instead.
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_to_position(graph: &GeometricGraph, source: NodeId, target: Point) -> RouteOutcome {
    let mut current = source.index();
    let mut path = vec![NodeId(current)];
    let mut current_dist = graph.position(NodeId(current)).distance_squared(target);
    loop {
        let mut best: Option<(usize, f64)> = None;
        for &nbr in graph.neighbors(NodeId(current)) {
            let d = graph.position(NodeId(nbr)).distance_squared(target);
            if d < current_dist && best.map_or(true, |(_, bd)| d < bd) {
                best = Some((nbr, d));
            }
        }
        match best {
            Some((next, d)) => {
                current = next;
                current_dist = d;
                path.push(NodeId(current));
            }
            None => break,
        }
    }
    RouteOutcome {
        source,
        terminus: NodeId(current),
        delivered: true,
        hops: path.len() - 1,
        path,
    }
}

/// Routes a packet from `source` to the specific node `destination` by greedy
/// geographic forwarding towards the destination's position.
///
/// `delivered` is `true` only when the greedy walk actually terminates at
/// `destination`; a dead end short of it is reported as a failure (the
/// experiments count these rather than silently retrying).
///
/// # Panics
///
/// Panics if `source` or `destination` is out of range for the graph.
pub fn route_to_node(graph: &GeometricGraph, source: NodeId, destination: NodeId) -> RouteOutcome {
    let target = graph.position(destination);
    let mut outcome = route_to_position(graph, source, target);
    outcome.delivered = outcome.terminus == destination;
    outcome
}

/// Routes a round trip `a → b → a` (value exchange), returning the total
/// number of transmissions and whether both directions were delivered.
///
/// The paper's `Far(s)` subroutine is exactly this pattern: `s` routes its
/// value to `s'`, then `s'` routes its own value back to `s` (Section 4.2).
pub fn round_trip(graph: &GeometricGraph, a: NodeId, b: NodeId) -> (usize, bool) {
    let out = route_to_node(graph, a, b);
    let back = route_to_node(graph, b, a);
    (out.transmissions() + back.transmissions(), out.delivered && back.delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, c: f64, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, c)
    }

    #[test]
    fn routes_to_self_in_zero_hops() {
        let g = graph(100, 2.0, 1);
        let out = route_to_node(&g, NodeId(7), NodeId(7));
        assert!(out.delivered);
        assert_eq!(out.hops, 0);
        assert_eq!(out.path, vec![NodeId(7)]);
    }

    #[test]
    fn routes_to_adjacent_node_in_one_hop() {
        let g = graph(300, 2.0, 2);
        let src = NodeId(0);
        let nbr = NodeId(g.neighbors(src)[0]);
        let out = route_to_node(&g, src, nbr);
        assert!(out.delivered);
        assert_eq!(out.hops, 1);
    }

    #[test]
    fn delivery_succeeds_on_connected_graph_whp() {
        let g = graph(600, 2.0, 3);
        assert!(g.is_connected());
        let mut delivered = 0;
        let total = 50;
        for i in 0..total {
            let src = NodeId(i * 7 % g.len());
            let dst = NodeId((i * 13 + 5) % g.len());
            if route_to_node(&g, src, dst).delivered {
                delivered += 1;
            }
        }
        assert!(delivered >= total * 9 / 10, "only {delivered}/{total} delivered");
    }

    #[test]
    fn path_nodes_are_successively_adjacent() {
        let g = graph(400, 2.0, 4);
        let out = route_to_node(&g, NodeId(1), NodeId(399));
        for w in out.path.windows(2) {
            assert!(g.are_adjacent(w[0], w[1]));
        }
        assert_eq!(out.hops, out.path.len() - 1);
    }

    #[test]
    fn distance_to_target_is_monotone_along_path() {
        let g = graph(400, 2.0, 5);
        let dst = NodeId(200);
        let t = g.position(dst);
        let out = route_to_node(&g, NodeId(3), dst);
        let mut prev = f64::INFINITY;
        for &node in &out.path {
            let d = g.position(node).distance(t);
            assert!(d < prev + 1e-15, "greedy path moved away from the target");
            prev = d;
        }
    }

    #[test]
    fn dead_end_is_reported_not_hidden() {
        // A path graph bent around an obstacle: the greedy walk from node 0
        // towards node 2 gets stuck at node 1's dead end when geometry
        // misleads it. Construct a tiny graph where greedy fails: target is
        // close in space but the only connecting path goes "backwards".
        let pts = vec![
            Point::new(0.10, 0.50), // 0 source
            Point::new(0.20, 0.50), // 1 neighbor of 0, closest to target, dead end
            Point::new(0.30, 0.90), // 2 detour node (far from target)
            Point::new(0.40, 0.50), // 3 target, only adjacent to 2
        ];
        // radius 0.12 connects 0-1 only; 2 and 3 are isolated from them but
        // within 0.45 of each other? Use explicit radius so 0-1 adjacent,
        // 1-3 NOT adjacent (0.2 apart > 0.12), so greedy stops at 1.
        let g = GeometricGraph::build(pts, 0.12);
        let out = route_to_node(&g, NodeId(0), NodeId(3));
        assert!(!out.delivered);
        assert_eq!(out.terminus, NodeId(1));
    }

    #[test]
    fn round_trip_costs_both_directions() {
        let g = graph(500, 2.0, 6);
        let (tx, ok) = round_trip(&g, NodeId(0), NodeId(499));
        if ok {
            let one_way = route_to_node(&g, NodeId(0), NodeId(499)).transmissions();
            assert!(tx >= one_way, "round trip cheaper than one way");
        }
    }

    #[test]
    fn hop_count_scales_like_sqrt_n_over_log_n() {
        // With r = c·sqrt(log n/n), a route across the unit square takes about
        // 1/r = sqrt(n/log n)/c hops. Check the order of magnitude.
        let n = 2000;
        let c = 1.5;
        let g = graph(n, c, 7);
        let expected = (n as f64 / (n as f64).ln()).sqrt() / c;
        let out = route_to_position(&g, g.nearest_node(Point::new(0.02, 0.02)).unwrap(), Point::new(0.98, 0.98));
        let hops = out.hops as f64;
        assert!(
            hops > 0.4 * expected && hops < 4.0 * expected,
            "hops {hops} not within a small factor of {expected}"
        );
    }

    use geogossip_geometry::Point;
}
