//! Greedy geographic routing.
//!
//! A packet at node `u` headed for target position `t` is forwarded to the
//! neighbor of `u` that is closest to `t`, provided that neighbor is strictly
//! closer to `t` than `u` itself; otherwise the packet stops. On a geometric
//! random graph at the connectivity radius this succeeds w.h.p. and uses
//! `O(sqrt(n / log n))` hops (Dimakis et al., cited as [5]; the paper uses the
//! coarser `O(√n)` bound). Experiment E5 measures the constant.
//!
//! "Closest" is measured in the metric of the [`Topology`] the graph was
//! built with: Euclidean on the unit square, wrapped distance on the torus.
//! A torus packet therefore routes *across* the seam when that is shorter,
//! matching the adjacency (which also wraps) instead of fighting it.
//!
//! # Fast path vs. path-recording API
//!
//! The gossip protocols route twice per clock tick and only need the terminus
//! and the hop count, so the hot entry points ([`route_terminus`],
//! [`route_terminus_to_node`], [`round_trip`]) are **allocation-free**: the
//! greedy walk scans each hop's CSR neighbor block (indices plus coordinates
//! in parallel slices) and carries only scalars. The path-recording API
//! ([`route_to_position`], [`route_to_node`], and the scratch-buffer variant
//! [`route_to_position_into`]) wraps the same walk for experiments that
//! inspect the actual path.
//!
//! The per-hop argmin is a two-pass filtered scan: pass 1 streams the
//! graph's half-width `f32` scan mirror (8 bytes/neighbor — the walk is
//! memory-bound at large `n`) through a chunked, unrolled multi-accumulator
//! min-reduction the compiler vectorizes ([`min_d2_scan`]); pass 2 confirms
//! the few neighbors inside a provably conservative error window with exact
//! `f64` distances, so the selected hop is **bit-identical** to the
//! preserved all-`f64` scalar walk ([`route_terminus_reference`]) — including
//! tie-breaking, which always selects the **lowest neighbor index** among
//! equidistant neighbors (CSR rows are sorted, and both walks resolve ties
//! to the first occurrence).

use geogossip_geometry::point::NodeId;
use geogossip_geometry::topology::wrap_delta;
use geogossip_geometry::{Point, Topology};
use geogossip_graph::GeometricGraph;
use serde::{Deserialize, Serialize};

/// Result of routing one packet.
///
/// `transmissions` counts one transmission per hop actually taken; a routing
/// round-trip (request out, reply back) therefore costs
/// `2 × transmissions` when both directions succeed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// The node the packet started at.
    pub source: NodeId,
    /// The node the packet stopped at.
    pub terminus: NodeId,
    /// Whether the packet reached the intended destination.
    pub delivered: bool,
    /// Number of hops taken (= transmissions used).
    pub hops: usize,
    /// The full path, including source and terminus.
    pub path: Vec<NodeId>,
}

impl RouteOutcome {
    /// Number of one-hop transmissions consumed by this routing.
    pub fn transmissions(&self) -> usize {
        self.hops
    }
}

/// Result of the allocation-free greedy walk: terminus and hop count only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastRoute {
    /// The node the packet started at.
    pub source: NodeId,
    /// The node the packet stopped at.
    pub terminus: NodeId,
    /// Number of hops taken (= transmissions used).
    pub hops: usize,
}

impl FastRoute {
    /// Number of one-hop transmissions consumed by this routing.
    pub fn transmissions(&self) -> usize {
        self.hops
    }
}

/// Squared distance-to-target from raw coordinate deltas. Implementations are
/// zero-sized tokens, so the walk monomorphises into one tight loop per
/// metric: the unit-square loop is exactly the historical branch-free scan,
/// and the torus loop folds each delta through [`wrap_delta`] inline. The
/// `f32` companion backs the half-width approximate scan pass
/// ([`min_d2_scan`]); its torus fold is branch-free (`min`-of-two) so the
/// pass vectorizes on both metrics.
trait RouteMetric: Copy {
    /// Squared distance corresponding to coordinate deltas `(dx, dy)`.
    fn d2(self, dx: f64, dy: f64) -> f64;

    /// `f32` squared distance for the approximate scan pass. Must track
    /// [`RouteMetric::d2`] within [`SCAN_ABS_ERROR`] for deltas produced by
    /// unit-square coordinates rounded to `f32`.
    fn d2_f32(self, dx: f32, dy: f32) -> f32;
}

/// Plain Euclidean metric — the paper's unit-square model.
#[derive(Clone, Copy)]
struct EuclideanMetric;

impl RouteMetric for EuclideanMetric {
    #[inline(always)]
    fn d2(self, dx: f64, dy: f64) -> f64 {
        dx * dx + dy * dy
    }

    #[inline(always)]
    fn d2_f32(self, dx: f32, dy: f32) -> f32 {
        dx * dx + dy * dy
    }
}

/// Wrapped (torus) metric: per-axis deltas fold onto `[0, 1/2]` before
/// squaring, so a target across the seam is correctly seen as close.
#[derive(Clone, Copy)]
struct TorusMetric;

impl RouteMetric for TorusMetric {
    #[inline(always)]
    fn d2(self, dx: f64, dy: f64) -> f64 {
        let dx = wrap_delta(dx);
        let dy = wrap_delta(dy);
        dx * dx + dy * dy
    }

    #[inline(always)]
    fn d2_f32(self, dx: f32, dy: f32) -> f32 {
        // `wrap_delta` restricted to |d| ≤ 1 (unit-square coordinate deltas):
        // fold by reflection instead of `%` so the scan pass stays free of
        // libm calls and vectorizes. Identical to `wrap_delta` on that
        // domain; 1-Lipschitz, so the f32 error bound carries through.
        let dx = dx.abs();
        let dx = if dx > 0.5 { 1.0 - dx } else { dx };
        let dy = dy.abs();
        let dy = if dy > 0.5 { 1.0 - dy } else { dy };
        dx * dx + dy * dy
    }
}

/// The greedy walk itself, shared by every routing entry point.
///
/// Distance comparisons use the metric of the topology the graph was built
/// with: Euclidean on the unit square, wrapped distance on the torus (so a
/// packet near the seam correctly hops *across* it instead of trekking the
/// long way around — the seam defect fixed by this dispatch is pinned in
/// `tests/torus_routing.rs`). The dispatch happens once per walk; the
/// inner loop stays monomorphised and branch-free.
///
/// Invokes `on_hop` with each node the packet moves to (excluding the source)
/// and returns `(terminus, hops)`. Inlined so the no-op callback of the fast
/// path compiles away entirely.
#[inline(always)]
fn greedy_walk(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    on_hop: impl FnMut(NodeId),
) -> (NodeId, usize) {
    match graph.topology() {
        Topology::UnitSquare => greedy_walk_metric(graph, source, target, EuclideanMetric, on_hop),
        Topology::Torus => greedy_walk_metric(graph, source, target, TorusMetric, on_hop),
    }
}

/// Lane count of the chunked min-reduction in [`min_d2_scan`]: eight
/// independent `f32` accumulators fill one 256-bit vector register (or two
/// 128-bit ones) and break the serial `min` dependency chain of the scalar
/// scan.
const SCAN_LANES: usize = 8;

/// Upper bound on `|d2_f32 − d2|` over the scan's whole input domain
/// (unit-square coordinates and targets, both rounded to `f32` before the
/// subtraction), with a ≥4× safety margin.
///
/// Derivation: each coordinate rounds with error ≤ 2⁻²⁴; each delta is then
/// off by ≤ 2·2⁻²⁴ plus half an ulp of the subtraction, so `|δdx| ≤ 1.9e-7`
/// with `|dx| ≤ 1` (the torus fold is 1-Lipschitz and only shrinks deltas).
/// Squaring and summing: `|d2_f32 − d2| ≤ 2(|dx| + |dy|)·1.9e-7` plus three
/// `f32` roundings of values ≤ 2, together ≤ 9e-7. The candidate window in
/// [`greedy_walk_metric`] needs twice that (error on the minimum plus error
/// on the probe) plus one more `f32` add rounding; `4e-6` covers it all with
/// margin.
const SCAN_ABS_ERROR: f32 = 4e-6;

/// Capacity of the per-walk scan scratch buffer, in neighbors. Degrees at
/// the connectivity radius are `Θ(log n)` (≈ 160 even at `n = 2²⁰`), so the
/// buffered fast path virtually always applies; wider rows fall back to the
/// buffer-free scan, which is bit-identical.
const SCAN_BUF: usize = 512;

/// Pass 1 of the per-hop argmin: computes every approximate squared
/// distance-to-target over a node's half-width scan row
/// ([`GeometricGraph::scan_block`]) into `buf`, returning their minimum — a
/// chunked, unrolled multi-accumulator `f32` scan.
///
/// The body processes [`SCAN_LANES`] neighbors per iteration into
/// independent accumulators (no cross-lane dependency, no bounds checks —
/// the lanes come from `chunks_exact`, the min is a branch-free select),
/// which is the shape the compiler auto-vectorizes; the remainder folds
/// scalar. Reading 8 bytes per neighbor instead of the 16 the `f64` mirror
/// costs also halves the random-access memory traffic the walk is bound by
/// at large `n`. The stored distances let pass 2 test the candidate window
/// without recomputing; the minimum is only used to open a
/// [`SCAN_ABS_ERROR`]-wide window that provably contains the exact argmin —
/// see [`greedy_walk_metric`].
///
/// # Panics
///
/// Panics if `buf` is shorter than the row (callers slice it to length).
#[inline(always)]
fn min_d2_scan<M: RouteMetric>(
    metric: M,
    xs: &[u32],
    ys: &[u32],
    buf: &mut [f32],
    tx: f32,
    ty: f32,
) -> f32 {
    let mut acc = [f32::INFINITY; SCAN_LANES];
    let mut chunks_x = xs.chunks_exact(SCAN_LANES);
    let mut chunks_y = ys.chunks_exact(SCAN_LANES);
    let mut chunks_buf = buf.chunks_exact_mut(SCAN_LANES);
    for ((px, py), pb) in (&mut chunks_x).zip(&mut chunks_y).zip(&mut chunks_buf) {
        for lane in 0..SCAN_LANES {
            // `from_bits` is a free reinterpretation of the packed row.
            let d = metric.d2_f32(f32::from_bits(px[lane]) - tx, f32::from_bits(py[lane]) - ty);
            pb[lane] = d;
            acc[lane] = if d < acc[lane] { d } else { acc[lane] };
        }
    }
    let mut min_dist = f32::INFINITY;
    for lane_min in acc {
        min_dist = min_dist.min(lane_min);
    }
    let tail = chunks_buf.into_remainder();
    for ((&x, &y), b) in chunks_x
        .remainder()
        .iter()
        .zip(chunks_y.remainder())
        .zip(tail)
    {
        let d = metric.d2_f32(f32::from_bits(x) - tx, f32::from_bits(y) - ty);
        *b = d;
        min_dist = min_dist.min(d);
    }
    min_dist
}

/// Monomorphised walk body behind [`greedy_walk`] — the overhauled per-hop
/// argmin.
///
/// Per hop: **pass 1** streams the half-width `f32` scan row into a stack
/// scratch buffer and finds the approximate minimum ([`min_d2_scan`],
/// vectorized, 8 bytes/neighbor). **Pass 2** walks the (L1-hot) buffer and,
/// for every neighbor within [`SCAN_ABS_ERROR`] of the approximate minimum —
/// the window provably contains every exact minimizer, see the constant's
/// docs — gathers the **exact** `f64` distance from the CSR coordinate
/// mirror and keeps the strictly-smallest, first-encountered winner. Since
/// CSR rows are sorted and the window is conservative, the selected
/// neighbor, its exact distance, and the tie-breaking (lowest neighbor index
/// on equal distance) are **bit-identical** to the preserved all-`f64`
/// scalar walk ([`greedy_walk_reference`]), which property tests pin.
#[inline(always)]
fn greedy_walk_metric<M: RouteMetric>(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    metric: M,
    mut on_hop: impl FnMut(NodeId),
) -> (NodeId, usize) {
    let mut current = source.index();
    let src = graph.position(source);
    let mut current_dist = metric.d2(src.x - target.x, src.y - target.y);
    let tx = target.x as f32;
    let ty = target.y as f32;
    // Per-walk scratch for pass 1's approximate distances (stack, zeroed
    // once per walk, reused across hops).
    let mut scratch = [0f32; SCAN_BUF];
    let mut hops = 0usize;
    loop {
        // One hop touches exactly one random-access stream — the packed scan
        // row `[x_bits… y_bits… idx…]` — plus the position table for the few
        // exact confirmations (small enough to stay cache-resident). The
        // cold `f64` coordinate mirrors are never read on this path.
        let (xs32, ys32, idx) = graph.scan_block(NodeId(current));
        let mut min_dist = f64::INFINITY;
        let mut best = u32::MAX;
        if xs32.len() <= SCAN_BUF {
            let buf = &mut scratch[..xs32.len()];
            let approx_min = min_d2_scan(metric, xs32, ys32, buf, tx, ty);
            // Every exact minimizer's approximate distance lies within the
            // window (an empty row leaves it at infinity and stops below).
            let window = approx_min + SCAN_ABS_ERROR;
            for (k, &d32) in buf.iter().enumerate() {
                if d32 <= window {
                    let p = graph.position(NodeId(idx[k] as usize));
                    let d = metric.d2(p.x - target.x, p.y - target.y);
                    // Strict `<` keeps the first-encountered minimum: the
                    // lowest neighbor index, CSR rows being sorted.
                    if d < min_dist {
                        min_dist = d;
                        best = idx[k];
                    }
                }
            }
        } else {
            // Rows wider than the scratch buffer (far above any
            // connectivity-radius degree) recompute the approximate
            // distances in pass 2 — same window, same winner.
            let mut approx_min = f32::INFINITY;
            for (&x, &y) in xs32.iter().zip(ys32) {
                approx_min =
                    approx_min.min(metric.d2_f32(f32::from_bits(x) - tx, f32::from_bits(y) - ty));
            }
            let window = approx_min + SCAN_ABS_ERROR;
            for (k, (&x32, &y32)) in xs32.iter().zip(ys32).enumerate() {
                if metric.d2_f32(f32::from_bits(x32) - tx, f32::from_bits(y32) - ty) <= window {
                    let p = graph.position(NodeId(idx[k] as usize));
                    let d = metric.d2(p.x - target.x, p.y - target.y);
                    if d < min_dist {
                        min_dist = d;
                        best = idx[k];
                    }
                }
            }
        }
        // A neighbor must be strictly closer than the current node to make
        // progress; otherwise the packet stops here.
        if min_dist >= current_dist {
            return (NodeId(current), hops);
        }
        current = best as usize;
        current_dist = min_dist;
        hops += 1;
        on_hop(NodeId(current));
    }
}

/// The preserved pre-overhaul walk, kept **verbatim** (the same
/// keep-the-reference discipline as `GeometricGraph::build_reference`): an
/// all-`f64` two-pass scan of the CSR neighbor block — pass 1 a plain
/// left-to-right min-reduction over the squared distances, pass 2 recovering
/// the winning index by recomputing until the bit-identical minimum
/// reappears (first occurrence = lowest neighbor index, CSR rows being
/// sorted). Backs [`route_terminus_reference`] so property tests and the
/// bench can pin the `f32`-filtered production walk against it on the same
/// instances.
#[inline(always)]
fn greedy_walk_reference<M: RouteMetric>(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    metric: M,
) -> (NodeId, usize) {
    let mut current = source.index();
    let src = graph.position(source);
    let mut current_dist = metric.d2(src.x - target.x, src.y - target.y);
    let mut hops = 0usize;
    loop {
        let (nbrs, xs, ys) = graph.neighbor_block(NodeId(current));
        let mut min_dist = f64::INFINITY;
        for k in 0..nbrs.len() {
            let d = metric.d2(xs[k] - target.x, ys[k] - target.y);
            min_dist = min_dist.min(d);
        }
        if min_dist >= current_dist {
            return (NodeId(current), hops);
        }
        let mut best = 0usize;
        for k in 0..nbrs.len() {
            if metric.d2(xs[k] - target.x, ys[k] - target.y) == min_dist {
                best = k;
                break;
            }
        }
        current = nbrs[best] as usize;
        current_dist = min_dist;
        hops += 1;
    }
}

/// Liveness-masked greedy walk for fault-injection scenarios: the per-hop
/// argmin considers only neighbors marked alive, so packets route *around*
/// crashed nodes. An all-`f64` scalar scan modeled on
/// [`greedy_walk_reference`] — masked routing is only invoked while churn has
/// actually killed nodes, so it trades the vectorized fast path for the
/// simplest correct scan. Same progress rule and tie-breaking (strictly
/// closer or stop; lowest neighbor index on equal distance, CSR rows being
/// sorted), so with an all-alive mask the walk is bit-identical to the
/// unmasked reference.
///
/// Graceful degradation: when every closer neighbor is dead the walk stops at
/// the nearest **live** local minimum; if the source cannot move at all, the
/// terminus is the source itself with zero hops (callers treat a self-partner
/// as a free no-op). Indices beyond `alive`'s length count as alive, so an
/// empty mask degenerates to the unmasked walk.
#[inline(always)]
fn greedy_walk_masked<M: RouteMetric>(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    metric: M,
    alive: &[bool],
) -> (NodeId, usize) {
    let mut current = source.index();
    let src = graph.position(source);
    let mut current_dist = metric.d2(src.x - target.x, src.y - target.y);
    let mut hops = 0usize;
    loop {
        let (nbrs, xs, ys) = graph.neighbor_block(NodeId(current));
        let mut min_dist = f64::INFINITY;
        let mut best = usize::MAX;
        for k in 0..nbrs.len() {
            if !alive.get(nbrs[k] as usize).copied().unwrap_or(true) {
                continue;
            }
            let d = metric.d2(xs[k] - target.x, ys[k] - target.y);
            if d < min_dist {
                min_dist = d;
                best = nbrs[k] as usize;
            }
        }
        if min_dist >= current_dist {
            return (NodeId(current), hops);
        }
        current = best;
        current_dist = min_dist;
        hops += 1;
    }
}

/// [`route_terminus`] restricted to live nodes: routes from `source` towards
/// the *position* `target`, skipping neighbors whose entry in `alive` is
/// `false` (see [`greedy_walk_masked`] for the degradation semantics).
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_terminus_masked(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    alive: &[bool],
) -> FastRoute {
    let (terminus, hops) = match graph.topology() {
        Topology::UnitSquare => greedy_walk_masked(graph, source, target, EuclideanMetric, alive),
        Topology::Torus => greedy_walk_masked(graph, source, target, TorusMetric, alive),
    };
    FastRoute {
        source,
        terminus,
        hops,
    }
}

/// [`route_terminus_to_node`] restricted to live nodes — greedy-routes
/// towards `destination`'s position through [`route_terminus_masked`],
/// returning the walk plus whether it actually reached `destination` (a dead
/// destination region shows up as `delivered == false`, never a panic).
///
/// # Panics
///
/// Panics if `source` or `destination` is out of range for the graph.
pub fn route_terminus_to_node_masked(
    graph: &GeometricGraph,
    source: NodeId,
    destination: NodeId,
    alive: &[bool],
) -> (FastRoute, bool) {
    let route = route_terminus_masked(graph, source, graph.position(destination), alive);
    let delivered = route.terminus == destination;
    (route, delivered)
}

/// Allocation-free variant of [`route_to_position`]: routes a packet from
/// `source` towards the *position* `target` and returns only the stopping node
/// and hop count.
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_terminus(graph: &GeometricGraph, source: NodeId, target: Point) -> FastRoute {
    let (terminus, hops) = greedy_walk(graph, source, target, |_| {});
    FastRoute {
        source,
        terminus,
        hops,
    }
}

/// [`route_terminus`] through the preserved scalar reference walk, for
/// property tests and benches that pin the chunked vectorizable scan
/// bit-identical to the pre-overhaul implementation (same terminus, same hop
/// count, same tie-breaking). Production callers should use
/// [`route_terminus`].
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_terminus_reference(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
) -> FastRoute {
    let (terminus, hops) = match graph.topology() {
        Topology::UnitSquare => greedy_walk_reference(graph, source, target, EuclideanMetric),
        Topology::Torus => greedy_walk_reference(graph, source, target, TorusMetric),
    };
    FastRoute {
        source,
        terminus,
        hops,
    }
}

/// [`route_terminus_to_node`] through the preserved scalar reference walk —
/// see [`route_terminus_reference`].
///
/// # Panics
///
/// Panics if `source` or `destination` is out of range for the graph.
pub fn route_terminus_to_node_reference(
    graph: &GeometricGraph,
    source: NodeId,
    destination: NodeId,
) -> (FastRoute, bool) {
    let route = route_terminus_reference(graph, source, graph.position(destination));
    let delivered = route.terminus == destination;
    (route, delivered)
}

/// Allocation-free variant of [`route_to_node`]: greedy-routes from `source`
/// towards `destination`'s position, returning the walk plus whether it
/// actually reached `destination`.
///
/// # Panics
///
/// Panics if `source` or `destination` is out of range for the graph.
pub fn route_terminus_to_node(
    graph: &GeometricGraph,
    source: NodeId,
    destination: NodeId,
) -> (FastRoute, bool) {
    let route = route_terminus(graph, source, graph.position(destination));
    let delivered = route.terminus == destination;
    (route, delivered)
}

/// Routes a packet from `source` towards the *position* `target`, recording
/// the full path into the caller-supplied scratch buffer (cleared first).
///
/// This keeps the path-returning behaviour available without a fresh heap
/// allocation per call; experiments that route in a loop can reuse one buffer.
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_to_position_into(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    path: &mut Vec<NodeId>,
) -> FastRoute {
    path.clear();
    path.push(source);
    let (terminus, hops) = greedy_walk(graph, source, target, |node| path.push(node));
    FastRoute {
        source,
        terminus,
        hops,
    }
}

/// Routes a packet from `source` towards the *position* `target` and stops at
/// the node closest to it that greedy forwarding can reach.
///
/// This is the primitive used by geographic gossip: the sender does not know
/// which node is nearest the target position; the packet simply stops when no
/// neighbor makes progress, and the stopping node is the contacted partner.
/// `delivered` is `true` whenever the walk made at least the source's best
/// effort (it is only `false` if the source itself has no position, which
/// cannot happen here), so callers interested in "did we reach the globally
/// nearest node" should use [`route_to_node`] instead. Hot paths that do not
/// need the path should use [`route_terminus`].
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_to_position(graph: &GeometricGraph, source: NodeId, target: Point) -> RouteOutcome {
    let mut path = Vec::new();
    let route = route_to_position_into(graph, source, target, &mut path);
    RouteOutcome {
        source,
        terminus: route.terminus,
        delivered: true,
        hops: route.hops,
        path,
    }
}

/// Routes a packet from `source` to the specific node `destination` by greedy
/// geographic forwarding towards the destination's position.
///
/// `delivered` is `true` only when the greedy walk actually terminates at
/// `destination`; a dead end short of it is reported as a failure (the
/// experiments count these rather than silently retrying).
///
/// # Panics
///
/// Panics if `source` or `destination` is out of range for the graph.
pub fn route_to_node(graph: &GeometricGraph, source: NodeId, destination: NodeId) -> RouteOutcome {
    let target = graph.position(destination);
    let mut outcome = route_to_position(graph, source, target);
    outcome.delivered = outcome.terminus == destination;
    outcome
}

/// Routes a round trip `a → b → a` (value exchange), returning the total
/// number of transmissions and whether both directions were delivered.
///
/// The paper's `Far(s)` subroutine is exactly this pattern: `s` routes its
/// value to `s'`, then `s'` routes its own value back to `s` (Section 4.2).
/// Built on the allocation-free walk — no path is materialised.
pub fn round_trip(graph: &GeometricGraph, a: NodeId, b: NodeId) -> (usize, bool) {
    let (out, out_ok) = route_terminus_to_node(graph, a, b);
    let (back, back_ok) = route_terminus_to_node(graph, b, a);
    (
        out.transmissions() + back.transmissions(),
        out_ok && back_ok,
    )
}

/// One hop of the greedy walk, **stateless**: the neighbor of `current` that
/// is strictly closer to `target` than `current` itself (lowest neighbor
/// index on ties), or `None` when `current` is a local minimum and the packet
/// stops here.
///
/// This is the per-node forwarding decision of the message-passing runtime
/// (`geogossip-net`), where no walker carries state between hops. Iterating
/// it from a source reproduces [`route_terminus`] **bit-identically** (same
/// terminus, same hop count): the walk's carried current-distance is exactly
/// the chosen neighbor's `f64` squared distance, which this function
/// recomputes from [`GeometricGraph::position`] — the same value, bit for
/// bit, because the CSR coordinate mirror stores the same `f64` coordinates.
/// The parity is pinned by `iterated_greedy_step_matches_route_terminus`.
///
/// # Panics
///
/// Panics if `current` is out of range for the graph.
pub fn greedy_step(graph: &GeometricGraph, current: NodeId, target: Point) -> Option<NodeId> {
    match graph.topology() {
        Topology::UnitSquare => greedy_step_metric(graph, current, target, EuclideanMetric),
        Topology::Torus => greedy_step_metric(graph, current, target, TorusMetric),
    }
}

/// Monomorphised body of [`greedy_step`]: a single strict-`<` scan over the
/// CSR neighbor block, identical in arithmetic and tie-breaking to one
/// iteration of [`greedy_walk_reference`] (first-encountered minimum = lowest
/// neighbor index, CSR rows being sorted).
#[inline]
fn greedy_step_metric<M: RouteMetric>(
    graph: &GeometricGraph,
    current: NodeId,
    target: Point,
    metric: M,
) -> Option<NodeId> {
    let pos = graph.position(current);
    let current_dist = metric.d2(pos.x - target.x, pos.y - target.y);
    let (nbrs, xs, ys) = graph.neighbor_block(current);
    let mut min_dist = f64::INFINITY;
    let mut best = 0u32;
    for k in 0..nbrs.len() {
        let d = metric.d2(xs[k] - target.x, ys[k] - target.y);
        if d < min_dist {
            min_dist = d;
            best = nbrs[k];
        }
    }
    if min_dist >= current_dist {
        None
    } else {
        Some(NodeId(best as usize))
    }
}

/// [`greedy_step`] restricted to live neighbors: the per-hop forwarding
/// decision of the message-passing runtime under node churn. Same mask
/// semantics as [`greedy_walk_masked`] (indices beyond `alive`'s length count
/// as alive, so the empty mask degenerates to the unmasked step), same
/// progress rule and tie-breaking — iterating it from a live source
/// reproduces [`route_terminus_masked`] **bit-identically** (same terminus,
/// same hop count), pinned by
/// `iterated_greedy_step_masked_matches_route_terminus_masked`.
///
/// # Panics
///
/// Panics if `current` is out of range for the graph.
pub fn greedy_step_masked(
    graph: &GeometricGraph,
    current: NodeId,
    target: Point,
    alive: &[bool],
) -> Option<NodeId> {
    match graph.topology() {
        Topology::UnitSquare => {
            greedy_step_masked_metric(graph, current, target, EuclideanMetric, alive)
        }
        Topology::Torus => greedy_step_masked_metric(graph, current, target, TorusMetric, alive),
    }
}

/// Monomorphised body of [`greedy_step_masked`]: one iteration of
/// [`greedy_walk_masked`]'s scan, recomputing the current distance from
/// [`GeometricGraph::position`] (the same `f64` the walk carries, bit for
/// bit — the CSR coordinate mirror stores identical coordinates).
#[inline]
fn greedy_step_masked_metric<M: RouteMetric>(
    graph: &GeometricGraph,
    current: NodeId,
    target: Point,
    metric: M,
    alive: &[bool],
) -> Option<NodeId> {
    let pos = graph.position(current);
    let current_dist = metric.d2(pos.x - target.x, pos.y - target.y);
    let (nbrs, xs, ys) = graph.neighbor_block(current);
    let mut min_dist = f64::INFINITY;
    let mut best = 0u32;
    for k in 0..nbrs.len() {
        if !alive.get(nbrs[k] as usize).copied().unwrap_or(true) {
            continue;
        }
        let d = metric.d2(xs[k] - target.x, ys[k] - target.y);
        if d < min_dist {
            min_dist = d;
            best = nbrs[k];
        }
    }
    if min_dist >= current_dist {
        None
    } else {
        Some(NodeId(best as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, c: f64, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, c)
    }

    #[test]
    fn routes_to_self_in_zero_hops() {
        let g = graph(100, 2.0, 1);
        let out = route_to_node(&g, NodeId(7), NodeId(7));
        assert!(out.delivered);
        assert_eq!(out.hops, 0);
        assert_eq!(out.path, vec![NodeId(7)]);
    }

    #[test]
    fn routes_to_adjacent_node_in_one_hop() {
        let g = graph(300, 2.0, 2);
        let src = NodeId(0);
        let nbr = NodeId(g.neighbors(src)[0] as usize);
        let out = route_to_node(&g, src, nbr);
        assert!(out.delivered);
        assert_eq!(out.hops, 1);
    }

    #[test]
    fn delivery_succeeds_on_connected_graph_whp() {
        let g = graph(600, 2.0, 3);
        assert!(g.is_connected());
        let mut delivered = 0;
        let total = 50;
        for i in 0..total {
            let src = NodeId(i * 7 % g.len());
            let dst = NodeId((i * 13 + 5) % g.len());
            if route_to_node(&g, src, dst).delivered {
                delivered += 1;
            }
        }
        assert!(
            delivered >= total * 9 / 10,
            "only {delivered}/{total} delivered"
        );
    }

    #[test]
    fn path_nodes_are_successively_adjacent() {
        let g = graph(400, 2.0, 4);
        let out = route_to_node(&g, NodeId(1), NodeId(399));
        for w in out.path.windows(2) {
            assert!(g.are_adjacent(w[0], w[1]));
        }
        assert_eq!(out.hops, out.path.len() - 1);
    }

    #[test]
    fn distance_to_target_is_monotone_along_path() {
        let g = graph(400, 2.0, 5);
        let dst = NodeId(200);
        let t = g.position(dst);
        let out = route_to_node(&g, NodeId(3), dst);
        let mut prev = f64::INFINITY;
        for &node in &out.path {
            let d = g.position(node).distance(t);
            assert!(d < prev + 1e-15, "greedy path moved away from the target");
            prev = d;
        }
    }

    #[test]
    fn dead_end_is_reported_not_hidden() {
        // A path graph bent around an obstacle: the greedy walk from node 0
        // towards node 2 gets stuck at node 1's dead end when geometry
        // misleads it. Construct a tiny graph where greedy fails: target is
        // close in space but the only connecting path goes "backwards".
        let pts = vec![
            Point::new(0.10, 0.50), // 0 source
            Point::new(0.20, 0.50), // 1 neighbor of 0, closest to target, dead end
            Point::new(0.30, 0.90), // 2 detour node (far from target)
            Point::new(0.40, 0.50), // 3 target, only adjacent to 2
        ];
        // radius 0.12 connects 0-1 only; 2 and 3 are isolated from them but
        // within 0.45 of each other? Use explicit radius so 0-1 adjacent,
        // 1-3 NOT adjacent (0.2 apart > 0.12), so greedy stops at 1.
        let g = GeometricGraph::build(pts, 0.12);
        let out = route_to_node(&g, NodeId(0), NodeId(3));
        assert!(!out.delivered);
        assert_eq!(out.terminus, NodeId(1));
        let (fast, delivered) = route_terminus_to_node(&g, NodeId(0), NodeId(3));
        assert!(!delivered);
        assert_eq!(fast.terminus, NodeId(1));
    }

    #[test]
    fn fast_route_matches_path_route_across_many_instances() {
        // The allocation-free walk and the path-recording walk must agree on
        // terminus and hop count for every source/target pair tried, across
        // several random graphs.
        for seed in 0..8u64 {
            let g = graph(300, 1.5, seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
            let mut scratch = Vec::new();
            for _ in 0..40 {
                let pts = sample_unit_square(2, &mut rng);
                let src = g.nearest_node(pts[0]).unwrap();
                let target = pts[1];
                let full = route_to_position(&g, src, target);
                let fast = route_terminus(&g, src, target);
                assert_eq!(fast.terminus, full.terminus);
                assert_eq!(fast.hops, full.hops);
                let buffered = route_to_position_into(&g, src, target, &mut scratch);
                assert_eq!(buffered.terminus, full.terminus);
                assert_eq!(scratch, full.path);
            }
        }
    }

    #[test]
    fn round_trip_costs_both_directions() {
        let g = graph(500, 2.0, 6);
        let (tx, ok) = round_trip(&g, NodeId(0), NodeId(499));
        if ok {
            let one_way = route_to_node(&g, NodeId(0), NodeId(499)).transmissions();
            assert!(tx >= one_way, "round trip cheaper than one way");
        }
    }

    #[test]
    fn masked_walk_with_all_alive_matches_the_reference() {
        for seed in 0..6u64 {
            let g = graph(300, 1.5, seed);
            let alive = vec![true; g.len()];
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xa11e);
            for _ in 0..30 {
                let pts = sample_unit_square(2, &mut rng);
                let src = g.nearest_node(pts[0]).unwrap();
                let masked = route_terminus_masked(&g, src, pts[1], &alive);
                let reference = route_terminus_reference(&g, src, pts[1]);
                assert_eq!(masked, reference);
                // An empty mask also degenerates to the unmasked walk.
                assert_eq!(route_terminus_masked(&g, src, pts[1], &[]), reference);
            }
        }
    }

    #[test]
    fn masked_walk_routes_around_a_dead_node() {
        // Line graph 0 – 1 – 2 – 3 with node 1 dead: greedy from 0 towards 3
        // cannot advance (its only closer neighbor is dead), so the walk
        // degrades gracefully to a zero-hop self-terminus.
        let pts = vec![
            Point::new(0.10, 0.50),
            Point::new(0.20, 0.50),
            Point::new(0.30, 0.50),
            Point::new(0.40, 0.50),
        ];
        let g = GeometricGraph::build(pts, 0.12);
        let mut alive = vec![true; 4];
        alive[1] = false;
        let (route, delivered) = route_terminus_to_node_masked(&g, NodeId(0), NodeId(3), &alive);
        assert!(!delivered);
        assert_eq!(route.terminus, NodeId(0));
        assert_eq!(route.hops, 0);
        // From node 2 the path to 3 avoids the dead node entirely.
        let (route, delivered) = route_terminus_to_node_masked(&g, NodeId(2), NodeId(3), &alive);
        assert!(delivered);
        assert_eq!(route.hops, 1);
    }

    #[test]
    fn masked_walk_stops_at_nearest_live_local_minimum() {
        // Dense graph: kill the destination and its surroundings; the walk
        // must stop at a live node without ever visiting a dead one.
        let g = graph(500, 2.0, 9);
        let dst = NodeId(250);
        let t = g.position(dst);
        let mut alive = vec![true; g.len()];
        for (i, live) in alive.iter_mut().enumerate() {
            if g.position(NodeId(i)).distance(t) < 0.1 {
                *live = false;
            }
        }
        let src = (0..g.len())
            .map(NodeId)
            .find(|&i| alive[i.index()])
            .unwrap();
        let route = route_terminus_masked(&g, src, t, &alive);
        assert!(alive[route.terminus.index()], "terminus must be live");
    }

    #[test]
    fn hop_count_scales_like_sqrt_n_over_log_n() {
        // With r = c·sqrt(log n/n), a route across the unit square takes about
        // 1/r = sqrt(n/log n)/c hops. Check the order of magnitude.
        let n = 2000;
        let c = 1.5;
        let g = graph(n, c, 7);
        let expected = (n as f64 / (n as f64).ln()).sqrt() / c;
        let out = route_to_position(
            &g,
            g.nearest_node(Point::new(0.02, 0.02)).unwrap(),
            Point::new(0.98, 0.98),
        );
        let hops = out.hops as f64;
        assert!(
            hops > 0.4 * expected && hops < 4.0 * expected,
            "hops {hops} not within a small factor of {expected}"
        );
    }

    #[test]
    fn iterated_greedy_step_matches_route_terminus() {
        // The message-passing runtime forwards packets with the stateless
        // per-hop decision; iterating it must reproduce the stateful walk
        // bit-for-bit (terminus AND hop count), on both topologies, including
        // routes that dead-end short of a node destination.
        use geogossip_geometry::Topology;
        for (seed, topology) in [
            (3u64, Topology::UnitSquare),
            (4, Topology::Torus),
            (5, Topology::UnitSquare),
            (6, Topology::Torus),
        ] {
            let pts = sample_unit_square(300, &mut ChaCha8Rng::seed_from_u64(seed));
            let radius = geogossip_geometry::connectivity_radius(300, 1.5).min(0.49);
            let g = GeometricGraph::build_with_topology(pts, radius, topology);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57e9);
            for trial in 0..40 {
                let pts = sample_unit_square(2, &mut rng);
                let src = g.nearest_node(pts[0]).unwrap();
                // Alternate position targets and node targets (the two
                // forwarding modes of the net layer).
                let target = if trial % 2 == 0 {
                    pts[1]
                } else {
                    g.position(NodeId((trial * 31) % g.len()))
                };
                let walk = route_terminus(&g, src, target);
                let mut current = src;
                let mut hops = 0usize;
                while let Some(next) = greedy_step(&g, current, target) {
                    current = next;
                    hops += 1;
                    assert!(hops <= g.len(), "stateless walk failed to terminate");
                }
                assert_eq!(current, walk.terminus, "terminus diverged (seed {seed})");
                assert_eq!(hops, walk.hops, "hop count diverged (seed {seed})");
            }
        }
    }

    #[test]
    fn iterated_greedy_step_masked_matches_route_terminus_masked() {
        // The net layer's per-hop forwarding under churn must reproduce the
        // stateful masked walk bit-for-bit, and with an empty mask it must
        // degenerate to the unmasked step.
        use geogossip_geometry::Topology;
        for (seed, topology) in [(13u64, Topology::UnitSquare), (14, Topology::Torus)] {
            let pts = sample_unit_square(300, &mut ChaCha8Rng::seed_from_u64(seed));
            let radius = geogossip_geometry::connectivity_radius(300, 1.5).min(0.49);
            let g = GeometricGraph::build_with_topology(pts, radius, topology);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6d2b);
            // Kill a third of the nodes.
            let alive: Vec<bool> = (0..g.len()).map(|i| i % 3 != 0).collect();
            for trial in 0..40 {
                let pts = sample_unit_square(2, &mut rng);
                let src = {
                    let mut s = g.nearest_node(pts[0]).unwrap();
                    // Masked walks start at a live node in production (dead
                    // sensors are never activated and never forward).
                    while !alive[s.index()] {
                        s = NodeId((s.index() + 1) % g.len());
                    }
                    s
                };
                let target = if trial % 2 == 0 {
                    pts[1]
                } else {
                    g.position(NodeId((trial * 31) % g.len()))
                };
                let walk = route_terminus_masked(&g, src, target, &alive);
                let mut current = src;
                let mut hops = 0usize;
                while let Some(next) = greedy_step_masked(&g, current, target, &alive) {
                    current = next;
                    hops += 1;
                    assert!(hops <= g.len(), "stateless masked walk failed to terminate");
                }
                assert_eq!(current, walk.terminus, "terminus diverged (seed {seed})");
                assert_eq!(hops, walk.hops, "hop count diverged (seed {seed})");
                // Empty mask ⇔ unmasked step, hop by hop from the source.
                assert_eq!(
                    greedy_step_masked(&g, src, target, &[]),
                    greedy_step(&g, src, target)
                );
            }
        }
    }
}
