//! Greedy geographic routing.
//!
//! A packet at node `u` headed for target position `t` is forwarded to the
//! neighbor of `u` that is closest to `t`, provided that neighbor is strictly
//! closer to `t` than `u` itself; otherwise the packet stops. On a geometric
//! random graph at the connectivity radius this succeeds w.h.p. and uses
//! `O(sqrt(n / log n))` hops (Dimakis et al., cited as [5]; the paper uses the
//! coarser `O(√n)` bound). Experiment E5 measures the constant.
//!
//! "Closest" is measured in the metric of the [`Topology`] the graph was
//! built with: Euclidean on the unit square, wrapped distance on the torus.
//! A torus packet therefore routes *across* the seam when that is shorter,
//! matching the adjacency (which also wraps) instead of fighting it.
//!
//! # Fast path vs. path-recording API
//!
//! The gossip protocols route twice per clock tick and only need the terminus
//! and the hop count, so the hot entry points ([`route_terminus`],
//! [`route_terminus_to_node`], [`round_trip`]) are **allocation-free**: the
//! greedy walk scans each hop's CSR neighbor block (indices plus coordinates
//! in parallel slices) and carries only scalars. The path-recording API
//! ([`route_to_position`], [`route_to_node`], and the scratch-buffer variant
//! [`route_to_position_into`]) wraps the same walk for experiments that
//! inspect the actual path.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::topology::wrap_delta;
use geogossip_geometry::{Point, Topology};
use geogossip_graph::GeometricGraph;
use serde::{Deserialize, Serialize};

/// Result of routing one packet.
///
/// `transmissions` counts one transmission per hop actually taken; a routing
/// round-trip (request out, reply back) therefore costs
/// `2 × transmissions` when both directions succeed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// The node the packet started at.
    pub source: NodeId,
    /// The node the packet stopped at.
    pub terminus: NodeId,
    /// Whether the packet reached the intended destination.
    pub delivered: bool,
    /// Number of hops taken (= transmissions used).
    pub hops: usize,
    /// The full path, including source and terminus.
    pub path: Vec<NodeId>,
}

impl RouteOutcome {
    /// Number of one-hop transmissions consumed by this routing.
    pub fn transmissions(&self) -> usize {
        self.hops
    }
}

/// Result of the allocation-free greedy walk: terminus and hop count only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastRoute {
    /// The node the packet started at.
    pub source: NodeId,
    /// The node the packet stopped at.
    pub terminus: NodeId,
    /// Number of hops taken (= transmissions used).
    pub hops: usize,
}

impl FastRoute {
    /// Number of one-hop transmissions consumed by this routing.
    pub fn transmissions(&self) -> usize {
        self.hops
    }
}

/// Squared distance-to-target from raw coordinate deltas. Implementations are
/// zero-sized tokens, so the walk monomorphises into one tight loop per
/// metric: the unit-square loop is exactly the historical branch-free scan,
/// and the torus loop folds each delta through [`wrap_delta`] inline.
trait RouteMetric: Copy {
    /// Squared distance corresponding to coordinate deltas `(dx, dy)`.
    fn d2(self, dx: f64, dy: f64) -> f64;
}

/// Plain Euclidean metric — the paper's unit-square model.
#[derive(Clone, Copy)]
struct EuclideanMetric;

impl RouteMetric for EuclideanMetric {
    #[inline(always)]
    fn d2(self, dx: f64, dy: f64) -> f64 {
        dx * dx + dy * dy
    }
}

/// Wrapped (torus) metric: per-axis deltas fold onto `[0, 1/2]` before
/// squaring, so a target across the seam is correctly seen as close.
#[derive(Clone, Copy)]
struct TorusMetric;

impl RouteMetric for TorusMetric {
    #[inline(always)]
    fn d2(self, dx: f64, dy: f64) -> f64 {
        let dx = wrap_delta(dx);
        let dy = wrap_delta(dy);
        dx * dx + dy * dy
    }
}

/// The greedy walk itself, shared by every routing entry point.
///
/// Distance comparisons use the metric of the topology the graph was built
/// with: Euclidean on the unit square, wrapped distance on the torus (so a
/// packet near the seam correctly hops *across* it instead of trekking the
/// long way around — the seam defect fixed by this dispatch is pinned in
/// `tests/torus_routing.rs`). The dispatch happens once per walk; the
/// inner loop stays monomorphised and branch-free.
///
/// Invokes `on_hop` with each node the packet moves to (excluding the source)
/// and returns `(terminus, hops)`. Inlined so the no-op callback of the fast
/// path compiles away entirely.
#[inline(always)]
fn greedy_walk(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    on_hop: impl FnMut(NodeId),
) -> (NodeId, usize) {
    match graph.topology() {
        Topology::UnitSquare => greedy_walk_metric(graph, source, target, EuclideanMetric, on_hop),
        Topology::Torus => greedy_walk_metric(graph, source, target, TorusMetric, on_hop),
    }
}

/// Monomorphised walk body behind [`greedy_walk`].
#[inline(always)]
fn greedy_walk_metric<M: RouteMetric>(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    metric: M,
    mut on_hop: impl FnMut(NodeId),
) -> (NodeId, usize) {
    let mut current = source.index();
    let src = graph.position(source);
    let mut current_dist = metric.d2(src.x - target.x, src.y - target.y);
    let mut hops = 0usize;
    loop {
        // Scan the CSR neighbor block: indices and coordinates live in
        // parallel contiguous slices, so both passes below stream memory
        // linearly instead of gathering positions node by node.
        //
        // Pass 1 is a pure min-reduction over the squared distances — no
        // index tracking, no data-dependent branch — which the compiler
        // vectorizes. Pass 2 recovers the winning index by recomputing until
        // the (bit-identical) minimum reappears; since the minimum is unique
        // w.p. 1 and ties resolve to the first occurrence, this selects
        // exactly the neighbor the classic branchy scan selected.
        let (nbrs, xs, ys) = graph.neighbor_block(NodeId(current));
        let mut min_dist = f64::INFINITY;
        for k in 0..nbrs.len() {
            let d = metric.d2(xs[k] - target.x, ys[k] - target.y);
            min_dist = min_dist.min(d);
        }
        // A neighbor must be strictly closer than the current node to make
        // progress; otherwise the packet stops here (an empty neighbor block
        // leaves the minimum at infinity and stops too).
        if min_dist >= current_dist {
            return (NodeId(current), hops);
        }
        let mut best = 0usize;
        for k in 0..nbrs.len() {
            if metric.d2(xs[k] - target.x, ys[k] - target.y) == min_dist {
                best = k;
                break;
            }
        }
        current = nbrs[best] as usize;
        current_dist = min_dist;
        hops += 1;
        on_hop(NodeId(current));
    }
}

/// Allocation-free variant of [`route_to_position`]: routes a packet from
/// `source` towards the *position* `target` and returns only the stopping node
/// and hop count.
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_terminus(graph: &GeometricGraph, source: NodeId, target: Point) -> FastRoute {
    let (terminus, hops) = greedy_walk(graph, source, target, |_| {});
    FastRoute {
        source,
        terminus,
        hops,
    }
}

/// Allocation-free variant of [`route_to_node`]: greedy-routes from `source`
/// towards `destination`'s position, returning the walk plus whether it
/// actually reached `destination`.
///
/// # Panics
///
/// Panics if `source` or `destination` is out of range for the graph.
pub fn route_terminus_to_node(
    graph: &GeometricGraph,
    source: NodeId,
    destination: NodeId,
) -> (FastRoute, bool) {
    let route = route_terminus(graph, source, graph.position(destination));
    let delivered = route.terminus == destination;
    (route, delivered)
}

/// Routes a packet from `source` towards the *position* `target`, recording
/// the full path into the caller-supplied scratch buffer (cleared first).
///
/// This keeps the path-returning behaviour available without a fresh heap
/// allocation per call; experiments that route in a loop can reuse one buffer.
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_to_position_into(
    graph: &GeometricGraph,
    source: NodeId,
    target: Point,
    path: &mut Vec<NodeId>,
) -> FastRoute {
    path.clear();
    path.push(source);
    let (terminus, hops) = greedy_walk(graph, source, target, |node| path.push(node));
    FastRoute {
        source,
        terminus,
        hops,
    }
}

/// Routes a packet from `source` towards the *position* `target` and stops at
/// the node closest to it that greedy forwarding can reach.
///
/// This is the primitive used by geographic gossip: the sender does not know
/// which node is nearest the target position; the packet simply stops when no
/// neighbor makes progress, and the stopping node is the contacted partner.
/// `delivered` is `true` whenever the walk made at least the source's best
/// effort (it is only `false` if the source itself has no position, which
/// cannot happen here), so callers interested in "did we reach the globally
/// nearest node" should use [`route_to_node`] instead. Hot paths that do not
/// need the path should use [`route_terminus`].
///
/// # Panics
///
/// Panics if `source` is out of range for the graph.
pub fn route_to_position(graph: &GeometricGraph, source: NodeId, target: Point) -> RouteOutcome {
    let mut path = Vec::new();
    let route = route_to_position_into(graph, source, target, &mut path);
    RouteOutcome {
        source,
        terminus: route.terminus,
        delivered: true,
        hops: route.hops,
        path,
    }
}

/// Routes a packet from `source` to the specific node `destination` by greedy
/// geographic forwarding towards the destination's position.
///
/// `delivered` is `true` only when the greedy walk actually terminates at
/// `destination`; a dead end short of it is reported as a failure (the
/// experiments count these rather than silently retrying).
///
/// # Panics
///
/// Panics if `source` or `destination` is out of range for the graph.
pub fn route_to_node(graph: &GeometricGraph, source: NodeId, destination: NodeId) -> RouteOutcome {
    let target = graph.position(destination);
    let mut outcome = route_to_position(graph, source, target);
    outcome.delivered = outcome.terminus == destination;
    outcome
}

/// Routes a round trip `a → b → a` (value exchange), returning the total
/// number of transmissions and whether both directions were delivered.
///
/// The paper's `Far(s)` subroutine is exactly this pattern: `s` routes its
/// value to `s'`, then `s'` routes its own value back to `s` (Section 4.2).
/// Built on the allocation-free walk — no path is materialised.
pub fn round_trip(graph: &GeometricGraph, a: NodeId, b: NodeId) -> (usize, bool) {
    let (out, out_ok) = route_terminus_to_node(graph, a, b);
    let (back, back_ok) = route_terminus_to_node(graph, b, a);
    (
        out.transmissions() + back.transmissions(),
        out_ok && back_ok,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, c: f64, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, c)
    }

    #[test]
    fn routes_to_self_in_zero_hops() {
        let g = graph(100, 2.0, 1);
        let out = route_to_node(&g, NodeId(7), NodeId(7));
        assert!(out.delivered);
        assert_eq!(out.hops, 0);
        assert_eq!(out.path, vec![NodeId(7)]);
    }

    #[test]
    fn routes_to_adjacent_node_in_one_hop() {
        let g = graph(300, 2.0, 2);
        let src = NodeId(0);
        let nbr = NodeId(g.neighbors(src)[0] as usize);
        let out = route_to_node(&g, src, nbr);
        assert!(out.delivered);
        assert_eq!(out.hops, 1);
    }

    #[test]
    fn delivery_succeeds_on_connected_graph_whp() {
        let g = graph(600, 2.0, 3);
        assert!(g.is_connected());
        let mut delivered = 0;
        let total = 50;
        for i in 0..total {
            let src = NodeId(i * 7 % g.len());
            let dst = NodeId((i * 13 + 5) % g.len());
            if route_to_node(&g, src, dst).delivered {
                delivered += 1;
            }
        }
        assert!(
            delivered >= total * 9 / 10,
            "only {delivered}/{total} delivered"
        );
    }

    #[test]
    fn path_nodes_are_successively_adjacent() {
        let g = graph(400, 2.0, 4);
        let out = route_to_node(&g, NodeId(1), NodeId(399));
        for w in out.path.windows(2) {
            assert!(g.are_adjacent(w[0], w[1]));
        }
        assert_eq!(out.hops, out.path.len() - 1);
    }

    #[test]
    fn distance_to_target_is_monotone_along_path() {
        let g = graph(400, 2.0, 5);
        let dst = NodeId(200);
        let t = g.position(dst);
        let out = route_to_node(&g, NodeId(3), dst);
        let mut prev = f64::INFINITY;
        for &node in &out.path {
            let d = g.position(node).distance(t);
            assert!(d < prev + 1e-15, "greedy path moved away from the target");
            prev = d;
        }
    }

    #[test]
    fn dead_end_is_reported_not_hidden() {
        // A path graph bent around an obstacle: the greedy walk from node 0
        // towards node 2 gets stuck at node 1's dead end when geometry
        // misleads it. Construct a tiny graph where greedy fails: target is
        // close in space but the only connecting path goes "backwards".
        let pts = vec![
            Point::new(0.10, 0.50), // 0 source
            Point::new(0.20, 0.50), // 1 neighbor of 0, closest to target, dead end
            Point::new(0.30, 0.90), // 2 detour node (far from target)
            Point::new(0.40, 0.50), // 3 target, only adjacent to 2
        ];
        // radius 0.12 connects 0-1 only; 2 and 3 are isolated from them but
        // within 0.45 of each other? Use explicit radius so 0-1 adjacent,
        // 1-3 NOT adjacent (0.2 apart > 0.12), so greedy stops at 1.
        let g = GeometricGraph::build(pts, 0.12);
        let out = route_to_node(&g, NodeId(0), NodeId(3));
        assert!(!out.delivered);
        assert_eq!(out.terminus, NodeId(1));
        let (fast, delivered) = route_terminus_to_node(&g, NodeId(0), NodeId(3));
        assert!(!delivered);
        assert_eq!(fast.terminus, NodeId(1));
    }

    #[test]
    fn fast_route_matches_path_route_across_many_instances() {
        // The allocation-free walk and the path-recording walk must agree on
        // terminus and hop count for every source/target pair tried, across
        // several random graphs.
        for seed in 0..8u64 {
            let g = graph(300, 1.5, seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
            let mut scratch = Vec::new();
            for _ in 0..40 {
                let pts = sample_unit_square(2, &mut rng);
                let src = g.nearest_node(pts[0]).unwrap();
                let target = pts[1];
                let full = route_to_position(&g, src, target);
                let fast = route_terminus(&g, src, target);
                assert_eq!(fast.terminus, full.terminus);
                assert_eq!(fast.hops, full.hops);
                let buffered = route_to_position_into(&g, src, target, &mut scratch);
                assert_eq!(buffered.terminus, full.terminus);
                assert_eq!(scratch, full.path);
            }
        }
    }

    #[test]
    fn round_trip_costs_both_directions() {
        let g = graph(500, 2.0, 6);
        let (tx, ok) = round_trip(&g, NodeId(0), NodeId(499));
        if ok {
            let one_way = route_to_node(&g, NodeId(0), NodeId(499)).transmissions();
            assert!(tx >= one_way, "round trip cheaper than one way");
        }
    }

    #[test]
    fn hop_count_scales_like_sqrt_n_over_log_n() {
        // With r = c·sqrt(log n/n), a route across the unit square takes about
        // 1/r = sqrt(n/log n)/c hops. Check the order of magnitude.
        let n = 2000;
        let c = 1.5;
        let g = graph(n, c, 7);
        let expected = (n as f64 / (n as f64).ln()).sqrt() / c;
        let out = route_to_position(
            &g,
            g.nearest_node(Point::new(0.02, 0.02)).unwrap(),
            Point::new(0.98, 0.98),
        );
        let hops = out.hops as f64;
        assert!(
            hops > 0.4 * expected && hops < 4.0 * expected,
            "hops {hops} not within a small factor of {expected}"
        );
    }
}
