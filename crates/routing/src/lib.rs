//! Routing substrate for geographic gossip.
//!
//! Both the Dimakis et al. baseline and the paper's hierarchical protocol move
//! packets between *non-adjacent* sensors by greedy geographic routing, and the
//! paper's `Activate.square`/`Deactivate.square` subroutines reach every member
//! of a square by flooding restricted to that square. This crate implements:
//!
//! * [`greedy`] — greedy geographic forwarding: at every hop the packet moves
//!   to the neighbor closest (in Euclidean distance) to the target position,
//!   stopping when no neighbor improves on the current node. Hop counts and
//!   dead-end failures are reported, never hidden.
//! * [`flood`] — flooding restricted to a subset of nodes (a square of the
//!   hierarchical partition), with transmission accounting.
//! * [`target`] — selection of a "uniformly random node" by sampling a uniform
//!   position and routing to the nearest sensor, with optional rejection
//!   sampling to flatten the node distribution (the trick used in [5] and
//!   inherited by the paper).
//!
//! # Example
//!
//! ```
//! use geogossip_graph::GeometricGraph;
//! use geogossip_geometry::{connectivity_radius, sampling::sample_unit_square};
//! use geogossip_routing::greedy::route_to_node;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let pts = sample_unit_square(400, &mut ChaCha8Rng::seed_from_u64(5));
//! let g = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
//! let outcome = route_to_node(&g, 0.into(), 399.into());
//! assert!(outcome.delivered);
//! assert!(outcome.hops >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flood;
pub mod greedy;
pub mod target;

pub use flood::{flood_cell, FloodOutcome};
pub use greedy::{
    round_trip, route_terminus, route_terminus_masked, route_terminus_to_node,
    route_terminus_to_node_masked, route_to_node, route_to_position, route_to_position_into,
    FastRoute, RouteOutcome,
};
pub use target::{TargetSelector, TargetStats};
