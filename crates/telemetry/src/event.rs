//! The typed, deterministic event vocabulary.
//!
//! Every variant carries only simulation state: tick indices, node indices,
//! sim-time (the Poisson clock's time axis), message ids, and counter values.
//! Nothing here may ever be populated from the wall clock — that invariant is
//! what makes a probed run's event stream byte-identical across reruns and
//! thread counts (see the determinism CI job, which diffs `events.jsonl`
//! byte-for-byte).

use geogossip_analysis::json::JsonValue;

/// One structured telemetry event.
///
/// The JSON rendering ([`Event::to_json_value`]) is part of the determinism
/// contract: field order is fixed (the `event` tag first, then fields in
/// declaration order) and numbers use the workspace JSON writer's
/// shortest-round-trip formatting, so two runs that emit the same events
/// produce the same bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A scenario trial is about to run.
    TrialStarted {
        /// Scenario name from the spec.
        scenario: String,
        /// Trial index within the scenario.
        trial: u64,
    },
    /// A scenario trial finished.
    TrialFinished {
        /// Scenario name from the spec.
        scenario: String,
        /// Trial index within the scenario.
        trial: u64,
        /// Stop reason token (`converged`, `tick-budget`, …).
        reason: String,
        /// Ticks the engine committed.
        ticks: u64,
        /// Total transmissions charged.
        transmissions: u64,
    },
    /// The engine committed one global-clock tick.
    TickCommitted {
        /// Global tick index (1-based, matching `EngineReport::ticks`).
        tick: u64,
        /// The activated node.
        node: u32,
        /// Poisson-clock time of the tick.
        sim_time: f64,
        /// Cumulative transmissions after the tick.
        transmissions: u64,
    },
    /// A greedy geographic route reached its terminus (or dead-ended).
    RouteResolved {
        /// The activated node that initiated the route.
        origin: u32,
        /// The node where the greedy walk stopped.
        terminus: u32,
        /// Hops taken on the outbound leg.
        hops: u32,
        /// Whether the route reached its intended destination (always true
        /// for position-addressed routes, where the terminus *is* the
        /// partner).
        delivered: bool,
        /// Sim-time at resolution.
        sim_time: f64,
    },
    /// The transport accepted a message for delivery.
    MessageDispatched {
        /// Ledger message id (`0` on the lossless fast path, which never
        /// allocates ids).
        id: u64,
        /// Recipient node.
        to: u32,
        /// Sim-time of the dispatch.
        sim_time: f64,
    },
    /// A message reached its recipient.
    MessageDelivered {
        /// Ledger message id.
        id: u64,
        /// Recipient node.
        to: u32,
        /// Sim-time of the delivery.
        sim_time: f64,
    },
    /// The wire dropped a transmission attempt.
    MessageDropped {
        /// Ledger message id.
        id: u64,
        /// Recipient node.
        to: u32,
        /// 1-based attempt number that was lost.
        attempt: u32,
        /// Sim-time of the loss.
        sim_time: f64,
    },
    /// A retry timer fired and the message was re-sent.
    MessageRetried {
        /// Ledger message id.
        id: u64,
        /// Recipient node.
        to: u32,
        /// 1-based attempt number now in flight.
        attempt: u32,
        /// Sim-time of the retransmission.
        sim_time: f64,
    },
    /// The clock activated a churned-out (dead) node; the tick was consumed
    /// without an activation.
    ActivationDead {
        /// Global tick index.
        tick: u64,
        /// The dead node.
        node: u32,
    },
    /// An activation was lost to the fault plan's activation drop rate.
    ActivationLost {
        /// Global tick index.
        tick: u64,
        /// The activated node whose round was lost.
        node: u32,
    },
    /// A stale-value node was activated (it gossips but never updates).
    ActivationStale {
        /// Global tick index.
        tick: u64,
        /// The stale node.
        node: u32,
    },
    /// The relative error first crossed the convergence threshold ε.
    ConvergenceCrossed {
        /// Ticks committed when the crossing was detected.
        tick: u64,
        /// Transmissions charged at the crossing.
        transmissions: u64,
        /// The relative error that satisfied the threshold.
        relative_error: f64,
    },
    /// A sweep cell is about to run.
    CellStarted {
        /// Cell index within the expanded sweep grid.
        index: u64,
        /// Cell scenario name.
        name: String,
    },
    /// A sweep cell finished; the counters are the per-cell summary.
    CellFinished {
        /// Cell index within the expanded sweep grid.
        index: u64,
        /// Cell scenario name.
        name: String,
        /// Trials the cell ran.
        trials: u64,
        /// How many of them converged.
        converged_trials: u64,
        /// Ticks summed over the cell's trials.
        ticks: u64,
        /// Transmissions summed over the cell's trials.
        transmissions: u64,
    },
}

impl Event {
    /// The stable kebab-case tag identifying the variant in JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TrialStarted { .. } => "trial-started",
            Event::TrialFinished { .. } => "trial-finished",
            Event::TickCommitted { .. } => "tick-committed",
            Event::RouteResolved { .. } => "route-resolved",
            Event::MessageDispatched { .. } => "message-dispatched",
            Event::MessageDelivered { .. } => "message-delivered",
            Event::MessageDropped { .. } => "message-dropped",
            Event::MessageRetried { .. } => "message-retried",
            Event::ActivationDead { .. } => "activation-dead",
            Event::ActivationLost { .. } => "activation-lost",
            Event::ActivationStale { .. } => "activation-stale",
            Event::ConvergenceCrossed { .. } => "convergence-crossed",
            Event::CellStarted { .. } => "cell-started",
            Event::CellFinished { .. } => "cell-finished",
        }
    }

    /// Renders the event as a JSON object with a fixed field order.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![("event", JsonValue::string(self.kind()))];
        match self {
            Event::TrialStarted { scenario, trial } => {
                fields.push(("scenario", JsonValue::string(scenario.clone())));
                fields.push(("trial", (*trial).into()));
            }
            Event::TrialFinished {
                scenario,
                trial,
                reason,
                ticks,
                transmissions,
            } => {
                fields.push(("scenario", JsonValue::string(scenario.clone())));
                fields.push(("trial", (*trial).into()));
                fields.push(("reason", JsonValue::string(reason.clone())));
                fields.push(("ticks", (*ticks).into()));
                fields.push(("transmissions", (*transmissions).into()));
            }
            Event::TickCommitted {
                tick,
                node,
                sim_time,
                transmissions,
            } => {
                fields.push(("tick", (*tick).into()));
                fields.push(("node", (*node as u64).into()));
                fields.push(("sim-time", (*sim_time).into()));
                fields.push(("transmissions", (*transmissions).into()));
            }
            Event::RouteResolved {
                origin,
                terminus,
                hops,
                delivered,
                sim_time,
            } => {
                fields.push(("origin", (*origin as u64).into()));
                fields.push(("terminus", (*terminus as u64).into()));
                fields.push(("hops", (*hops as u64).into()));
                fields.push(("delivered", (*delivered).into()));
                fields.push(("sim-time", (*sim_time).into()));
            }
            Event::MessageDispatched { id, to, sim_time } => {
                fields.push(("id", (*id).into()));
                fields.push(("to", (*to as u64).into()));
                fields.push(("sim-time", (*sim_time).into()));
            }
            Event::MessageDelivered { id, to, sim_time } => {
                fields.push(("id", (*id).into()));
                fields.push(("to", (*to as u64).into()));
                fields.push(("sim-time", (*sim_time).into()));
            }
            Event::MessageDropped {
                id,
                to,
                attempt,
                sim_time,
            } => {
                fields.push(("id", (*id).into()));
                fields.push(("to", (*to as u64).into()));
                fields.push(("attempt", (*attempt as u64).into()));
                fields.push(("sim-time", (*sim_time).into()));
            }
            Event::MessageRetried {
                id,
                to,
                attempt,
                sim_time,
            } => {
                fields.push(("id", (*id).into()));
                fields.push(("to", (*to as u64).into()));
                fields.push(("attempt", (*attempt as u64).into()));
                fields.push(("sim-time", (*sim_time).into()));
            }
            Event::ActivationDead { tick, node } => {
                fields.push(("tick", (*tick).into()));
                fields.push(("node", (*node as u64).into()));
            }
            Event::ActivationLost { tick, node } => {
                fields.push(("tick", (*tick).into()));
                fields.push(("node", (*node as u64).into()));
            }
            Event::ActivationStale { tick, node } => {
                fields.push(("tick", (*tick).into()));
                fields.push(("node", (*node as u64).into()));
            }
            Event::ConvergenceCrossed {
                tick,
                transmissions,
                relative_error,
            } => {
                fields.push(("tick", (*tick).into()));
                fields.push(("transmissions", (*transmissions).into()));
                fields.push(("relative-error", (*relative_error).into()));
            }
            Event::CellStarted { index, name } => {
                fields.push(("index", (*index).into()));
                fields.push(("name", JsonValue::string(name.clone())));
            }
            Event::CellFinished {
                index,
                name,
                trials,
                converged_trials,
                ticks,
                transmissions,
            } => {
                fields.push(("index", (*index).into()));
                fields.push(("name", JsonValue::string(name.clone())));
                fields.push(("trials", (*trials).into()));
                fields.push(("converged-trials", (*converged_trials).into()));
                fields.push(("ticks", (*ticks).into()));
                fields.push(("transmissions", (*transmissions).into()));
            }
        }
        JsonValue::object(fields)
    }

    /// Renders the event as one compact JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json_value().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_leads_and_field_order_is_stable() {
        let event = Event::TickCommitted {
            tick: 7,
            node: 3,
            sim_time: 0.5,
            transmissions: 14,
        };
        assert_eq!(
            event.to_jsonl(),
            r#"{"event":"tick-committed","tick":7,"node":3,"sim-time":0.5,"transmissions":14}"#
        );
    }

    #[test]
    fn every_variant_renders_its_kind() {
        let events = vec![
            Event::TrialStarted {
                scenario: "s".into(),
                trial: 0,
            },
            Event::TrialFinished {
                scenario: "s".into(),
                trial: 0,
                reason: "converged".into(),
                ticks: 1,
                transmissions: 2,
            },
            Event::TickCommitted {
                tick: 1,
                node: 0,
                sim_time: 0.0,
                transmissions: 0,
            },
            Event::RouteResolved {
                origin: 0,
                terminus: 1,
                hops: 2,
                delivered: true,
                sim_time: 0.25,
            },
            Event::MessageDispatched {
                id: 1,
                to: 2,
                sim_time: 0.0,
            },
            Event::MessageDelivered {
                id: 1,
                to: 2,
                sim_time: 0.0,
            },
            Event::MessageDropped {
                id: 1,
                to: 2,
                attempt: 1,
                sim_time: 0.0,
            },
            Event::MessageRetried {
                id: 1,
                to: 2,
                attempt: 2,
                sim_time: 0.0,
            },
            Event::ActivationDead { tick: 1, node: 0 },
            Event::ActivationLost { tick: 1, node: 0 },
            Event::ActivationStale { tick: 1, node: 0 },
            Event::ConvergenceCrossed {
                tick: 9,
                transmissions: 18,
                relative_error: 0.05,
            },
            Event::CellStarted {
                index: 0,
                name: "cell".into(),
            },
            Event::CellFinished {
                index: 0,
                name: "cell".into(),
                trials: 2,
                converged_trials: 2,
                ticks: 10,
                transmissions: 20,
            },
        ];
        for event in events {
            let line = event.to_jsonl();
            assert!(
                line.starts_with(&format!(r#"{{"event":"{}""#, event.kind())),
                "bad line: {line}"
            );
            // Round-trips through the workspace JSON parser.
            let parsed = JsonValue::parse(&line).expect("valid JSON");
            assert_eq!(parsed.get("event").unwrap().as_str(), Some(event.kind()));
        }
    }
}
