//! # geogossip-telemetry
//!
//! The observability layer: deterministic structured events, wall-clock phase
//! timers, and the unified metrics registry.
//!
//! The design splits telemetry along the repo's reproducibility equality
//! line:
//!
//! * **Events** ([`Event`], emitted through a [`Probe`]) derive *only* from
//!   simulation state — seeds, tick indices, sim-time, message ids, counter
//!   values. They never read the wall clock, so a probed run's event stream
//!   is byte-identical across reruns and thread counts.
//! * **Phase timings** ([`PhaseTimer`], aggregated into [`PhaseProfile`]
//!   log-bucketed histograms) are wall-clock measurements and live strictly
//!   on the `timing.csv` side of the line: they are never part of report
//!   equality and never appear in the event stream.
//!
//! The hook idiom mirrors the rest of the workspace's "no key, no code" rule:
//! engines accept a probe generically and the zero-sized [`NoProbe`] is the
//! default, so an unprobed run monomorphizes to exactly the pre-telemetry
//! machine code and stays bit-identical (pinned by `tests/telemetry_parity.rs`
//! the same way `tests/fault_parity.rs` pins the fault layer).
//!
//! Two built-in sinks ship with the crate: [`JsonlSink`] (append-only JSONL
//! event log, one compact JSON object per line) and [`MetricsRegistry`] (a
//! namespaced key/value store unifying the transmission counter, the message
//! ledger, and the fault counters under `engine.*` / `tx.*` / `net.*` /
//! `fault.*` / `protocol.*`). [`EventBuffer`] records events in memory so
//! rayon-parallel trials can each capture their own stream and replay them
//! into a single sink in trial order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod phase;
pub mod probe;
pub mod registry;
pub mod sink;

pub use event::Event;
pub use phase::{PhaseProfile, PhaseTimer, PHASE_CSV_HEADER};
pub use probe::{EventBuffer, NoProbe, Probe};
pub use registry::MetricsRegistry;
pub use sink::JsonlSink;
