//! Wall-clock phase timing: the side of telemetry that is *not* part of the
//! reproducibility equality set.
//!
//! [`PhaseTimer`] measures consecutive phases of a trial (graph build, field
//! draw, protocol build, engine run) with `std::time::Instant`;
//! [`PhaseProfile`] folds per-trial lap lists into log-bucketed
//! [`LogHistogram`]s per phase. Like `TrialCost` seconds and the sweep lab's
//! `timing.csv`, none of this data ever enters report equality or the event
//! stream — events are forbidden from reading the wall clock.

use std::time::Instant;

use geogossip_analysis::histogram::LogHistogram;

/// Header for the CSV emitted by [`PhaseProfile::csv_rows`].
pub const PHASE_CSV_HEADER: &str = "scope,phase,bucket_lo,bucket_hi,count";

/// Measures consecutive named phases as wall-clock lap times.
#[derive(Debug)]
pub struct PhaseTimer {
    mark: Instant,
    laps: Vec<(&'static str, f64)>,
}

impl PhaseTimer {
    /// Starts the timer; the first [`lap`](Self::lap) measures from here.
    pub fn start() -> Self {
        PhaseTimer {
            mark: Instant::now(),
            laps: Vec::new(),
        }
    }

    /// Ends the current phase, recording the seconds since the previous lap
    /// (or since [`start`](Self::start)) under `phase`, and returns them.
    pub fn lap(&mut self, phase: &'static str) -> f64 {
        let now = Instant::now();
        let seconds = now.duration_since(self.mark).as_secs_f64();
        self.mark = now;
        self.laps.push((phase, seconds));
        seconds
    }

    /// The laps recorded so far, in order.
    pub fn laps(&self) -> &[(&'static str, f64)] {
        &self.laps
    }

    /// Consumes the timer, returning its laps.
    pub fn into_laps(self) -> Vec<(&'static str, f64)> {
        self.laps
    }

    /// Sum of all recorded laps, in seconds.
    pub fn total(&self) -> f64 {
        self.laps.iter().map(|(_, s)| s).sum()
    }
}

/// Per-phase duration histograms, aggregated across trials.
///
/// Phases keep first-recorded order (the natural trial phase order), so CSV
/// output is stable; the underlying histogram merge is exactly associative,
/// so folding trials in any grouping yields identical profiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseProfile {
    phases: Vec<(String, LogHistogram)>,
}

impl PhaseProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    /// Records one duration sample for `phase`.
    pub fn record(&mut self, phase: &str, seconds: f64) {
        self.entry(phase).record(seconds);
    }

    /// Records a whole lap list (e.g. [`PhaseTimer::into_laps`]).
    pub fn record_laps(&mut self, laps: &[(&'static str, f64)]) {
        for (phase, seconds) in laps {
            self.record(phase, *seconds);
        }
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (phase, histogram) in &other.phases {
            self.entry(phase).merge(histogram);
        }
    }

    /// The phases in first-recorded order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.phases.iter().map(|(name, h)| (name.as_str(), h))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Renders CSV rows (no header; see [`PHASE_CSV_HEADER`]), one row per
    /// non-empty bucket, with the out-of-range counters as pseudo-buckets
    /// `zero`, `underflow`, and `overflow`.
    pub fn csv_rows(&self, scope: &str) -> String {
        let mut out = String::new();
        for (phase, histogram) in &self.phases {
            let mut push = |lo: String, hi: String, count: u64| {
                out.push_str(&format!("{scope},{phase},{lo},{hi},{count}\n"));
            };
            if histogram.zero() > 0 {
                push("0".into(), "0".into(), histogram.zero());
            }
            if histogram.underflow() > 0 {
                push(
                    "0".into(),
                    format!("{:e}", geogossip_analysis::histogram::bucket_bounds(0).0),
                    histogram.underflow(),
                );
            }
            for (lo, hi, count) in histogram.nonzero_buckets() {
                push(format!("{lo:e}"), format!("{hi:e}"), count);
            }
            if histogram.overflow() > 0 {
                let top = 2f64.powi(geogossip_analysis::histogram::MAX_EXP);
                push(format!("{top:e}"), "inf".into(), histogram.overflow());
            }
        }
        out
    }

    fn entry(&mut self, phase: &str) -> &mut LogHistogram {
        if let Some(i) = self.phases.iter().position(|(name, _)| name == phase) {
            return &mut self.phases[i].1;
        }
        self.phases.push((phase.to_string(), LogHistogram::new()));
        &mut self.phases.last_mut().expect("just pushed").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_consecutive_laps() {
        let mut timer = PhaseTimer::start();
        let a = timer.lap("graph");
        let b = timer.lap("engine");
        assert!(a >= 0.0 && b >= 0.0);
        let laps = timer.into_laps();
        assert_eq!(laps.len(), 2);
        assert_eq!(laps[0].0, "graph");
        assert_eq!(laps[1].0, "engine");
    }

    #[test]
    fn profile_merges_and_renders_stable_csv() {
        let mut a = PhaseProfile::new();
        a.record("graph", 0.5);
        a.record("engine", 3.0);
        let mut b = PhaseProfile::new();
        b.record("engine", 3.1);
        b.record("graph", 0.0);

        let mut merged = a.clone();
        merged.merge(&b);
        let csv = merged.csv_rows("trial");
        // Phase order follows first recording; the zero pseudo-bucket shows.
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("trial,graph,0,0,1"));
        assert!(lines[1].starts_with("trial,graph,"));
        assert!(lines[2].starts_with("trial,engine,"));
        // 3.0 and 3.1 share the [2,4) bucket.
        assert!(lines[2].contains(",2e0,4e0,2"));
    }
}
