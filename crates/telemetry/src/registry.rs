//! The unified, namespaced metrics registry.
//!
//! Counters from the whole stack land in one sorted key space:
//!
//! | namespace   | source                                                    |
//! |-------------|-----------------------------------------------------------|
//! | `engine.*`  | `EngineReport` (ticks, transmissions, final error, …)     |
//! | `tx.*`      | `TransmissionCounter` (local / routing / control / total) |
//! | `net.*`     | `MessageLedger` (`messages_*`, `rounds_abandoned`)        |
//! | `fault.*`   | fault-plan counters (`*_activations`, `stale_nodes`)      |
//! | `protocol.*`| everything a protocol reports from its own `metrics()`    |
//!
//! [`MetricsRegistry::record_trial_metrics`] applies the routing rules so the
//! flat name lists protocols and runtimes already produce (see
//! `TransportTrial::metrics`) cannot drift into ad-hoc namespaces; the CI
//! golden-key check (`scenarios/golden/telemetry_metrics_keys.txt`) pins the
//! resulting key set.

use std::collections::BTreeMap;

use geogossip_analysis::json::JsonValue;

/// A sorted map of namespaced metric keys to values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Sets `key` to `value`, replacing any previous value.
    pub fn set(&mut self, key: impl Into<String>, value: f64) {
        self.entries.insert(key.into(), value);
    }

    /// Adds `delta` to `key` (starting from zero if absent).
    pub fn add(&mut self, key: impl Into<String>, delta: f64) {
        *self.entries.entry(key.into()).or_insert(0.0) += delta;
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The sorted key list.
    pub fn keys(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Records a flat metric list produced by a trial (protocol metrics plus
    /// the ledger and fault counters appended by the runtimes), routing each
    /// name into its namespace:
    ///
    /// * `messages_*` and `rounds_abandoned` → `net.*` (with the redundant
    ///   `messages_` prefix stripped);
    /// * `dropped_activations`, `dead_activations`, `stale_nodes` →
    ///   `fault.*`;
    /// * everything else → `protocol.*`.
    pub fn record_trial_metrics(&mut self, metrics: &[(String, f64)]) {
        for (name, value) in metrics {
            let key = match name.as_str() {
                n if n.starts_with("messages_") => {
                    format!("net.{}", n.trim_start_matches("messages_"))
                }
                "rounds_abandoned" => "net.rounds_abandoned".to_string(),
                "dropped_activations" | "dead_activations" | "stale_nodes" => {
                    format!("fault.{name}")
                }
                _ => format!("protocol.{name}"),
            };
            self.set(key, *value);
        }
    }

    /// Renders the registry as a sorted JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(
            self.entries
                .iter()
                .map(|(k, v)| (k.as_str(), JsonValue::from(*v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespacing_routes_known_counter_families() {
        let mut registry = MetricsRegistry::new();
        registry.record_trial_metrics(&[
            ("exchanges".to_string(), 10.0),
            ("messages_sent".to_string(), 40.0),
            ("rounds_abandoned".to_string(), 1.0),
            ("dead_activations".to_string(), 3.0),
            ("stale_nodes".to_string(), 2.0),
        ]);
        assert_eq!(registry.get("protocol.exchanges"), Some(10.0));
        assert_eq!(registry.get("net.sent"), Some(40.0));
        assert_eq!(registry.get("net.rounds_abandoned"), Some(1.0));
        assert_eq!(registry.get("fault.dead_activations"), Some(3.0));
        assert_eq!(registry.get("fault.stale_nodes"), Some(2.0));
    }

    #[test]
    fn keys_are_sorted_and_json_is_sorted() {
        let mut registry = MetricsRegistry::new();
        registry.set("tx.total", 5.0);
        registry.set("engine.ticks", 9.0);
        registry.add("engine.ticks", 1.0);
        assert_eq!(registry.keys(), vec!["engine.ticks", "tx.total"]);
        assert_eq!(
            registry.to_json_value().render(),
            r#"{"engine.ticks":10,"tx.total":5}"#
        );
    }
}
