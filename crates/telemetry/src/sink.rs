//! The append-only JSONL event sink.

use std::io::Write;

use crate::event::Event;
use crate::probe::Probe;

/// Writes one compact JSON object per event, newline-delimited.
///
/// The byte stream is a pure function of the event sequence: field order is
/// fixed by [`Event::to_json_value`] and numbers use shortest-round-trip
/// formatting, so two identical runs produce identical files (the CI
/// determinism job relies on this).
///
/// I/O errors are latched rather than panicking mid-simulation: the first
/// failure is kept and every later event is dropped; [`JsonlSink::finish`]
/// surfaces it.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    written: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Callers that write to files should pass a
    /// `BufWriter` — the sink emits one small write per event.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            written: 0,
            error: None,
        }
    }

    /// Number of events successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Probe for JsonlSink<W> {
    fn on_event(&mut self, event: Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_jsonl();
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(error) => self.error = Some(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_event(Event::TrialStarted {
            scenario: "s".into(),
            trial: 0,
        });
        sink.on_event(Event::ActivationDead { tick: 4, node: 1 });
        assert_eq!(sink.written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "{\"event\":\"trial-started\",\"scenario\":\"s\",\"trial\":0}\n\
             {\"event\":\"activation-dead\",\"tick\":4,\"node\":1}\n"
        );
    }
}
