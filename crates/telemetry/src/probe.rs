//! The observer trait and its zero-cost default.
//!
//! Engines take a probe *generically* and call [`Probe::enabled`] before any
//! event construction. [`NoProbe`] — the default — inlines `enabled()` to
//! `false`, so the unprobed engine monomorphizes to exactly the
//! pre-telemetry machine code: no event is built, no branch survives, and
//! the run stays bit-identical to a build without this crate (pinned by
//! `tests/telemetry_parity.rs`).

use crate::event::Event;

/// An observer of deterministic simulation events.
///
/// Implementations must be cheap: probes sit on engine hot paths and receive
/// one [`Event::TickCommitted`] per tick. They must also never feed
/// wall-clock data back into the simulation — a probe is a pure consumer.
pub trait Probe {
    /// Receives one event.
    fn on_event(&mut self, event: Event);

    /// Whether this probe actually consumes events.
    ///
    /// Engines skip event construction entirely when this returns `false`.
    /// The default is `true`; only no-op probes should override it.
    fn enabled(&self) -> bool {
        true
    }
}

/// Forwarding impl so `&mut dyn Probe` (and `&mut ConcreteProbe`) can be
/// passed wherever a sized `impl Probe` is expected.
impl<P: Probe + ?Sized> Probe for &mut P {
    fn on_event(&mut self, event: Event) {
        (**self).on_event(event);
    }

    fn enabled(&self) -> bool {
        (**self).enabled()
    }
}

/// The zero-sized "no telemetry" probe.
///
/// `enabled()` is a compile-time `false`, so engines monomorphized over
/// `NoProbe` contain no telemetry code at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    #[inline(always)]
    fn on_event(&mut self, _event: Event) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory event recorder.
///
/// Rayon-parallel trials each record into their own buffer; the runner then
/// replays the buffers into the single output sink in trial-index order, so
/// the merged stream is byte-identical no matter how many threads ran the
/// trials.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventBuffer {
    events: Vec<Event>,
}

impl EventBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays every recorded event into `probe`, in order.
    pub fn replay(&self, probe: &mut dyn Probe) {
        for event in &self.events {
            probe.on_event(event.clone());
        }
    }

    /// Consumes the buffer, returning the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Probe for EventBuffer {
    fn on_event(&mut self, event: Event) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probe_is_disabled_and_zero_sized() {
        assert!(!NoProbe.enabled());
        assert_eq!(std::mem::size_of::<NoProbe>(), 0);
    }

    #[test]
    fn buffer_records_and_replays_in_order() {
        let mut buffer = EventBuffer::new();
        buffer.on_event(Event::TickCommitted {
            tick: 1,
            node: 0,
            sim_time: 0.5,
            transmissions: 2,
        });
        buffer.on_event(Event::ActivationDead { tick: 2, node: 3 });
        assert!(buffer.enabled());
        assert_eq!(buffer.len(), 2);

        let mut copy = EventBuffer::new();
        buffer.replay(&mut copy);
        assert_eq!(buffer, copy);
    }

    #[test]
    fn mut_references_forward() {
        let mut buffer = EventBuffer::new();
        {
            let mut as_dyn: &mut dyn Probe = &mut buffer;
            let reborrow = &mut as_dyn;
            assert!(reborrow.enabled());
            reborrow.on_event(Event::ActivationDead { tick: 1, node: 0 });
        }
        assert_eq!(buffer.len(), 1);
    }
}
